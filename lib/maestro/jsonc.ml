(* Shared JSON codec helpers for the persistence layers (captured graphs
   in Graph, the disk-backed analysis store in Store).  Floats persist as
   IEEE-754 bit patterns: the JSON emitter prints numbers with %.12g,
   which is lossy for the jittered per-TB costs, and both replay and
   disk-warm preparation must be bit-identical to the fresh computation. *)

module Json = Bm_metrics.Json
module Encode = Bm_depgraph.Encode

exception Bad of string

let bad fmt = Printf.ksprintf (fun msg -> raise (Bad msg)) fmt

let json_of_float f = Json.Str (Printf.sprintf "%016Lx" (Int64.bits_of_float f))

let float_of_json ~what = function
  | Json.Str s when String.length s = 16 -> (
    match Int64.of_string_opt ("0x" ^ s) with
    | Some bits -> Int64.float_of_bits bits
    | None -> bad "%s: invalid float bits %S" what s)
  | _ -> bad "%s: expected a 16-hex-digit float" what

let int_of_json ~what j =
  match Json.to_int j with Some i -> i | None -> bad "%s: expected an integer" what

let str_of_json ~what j =
  match Json.to_str j with Some s -> s | None -> bad "%s: expected a string" what

let list_of_json ~what j =
  match Json.to_list j with Some l -> l | None -> bad "%s: expected an array" what

let field ~what name j =
  match Json.member name j with Some v -> v | None -> bad "%s: missing field %S" what name

let int_field ~what name j = int_of_json ~what:(what ^ "." ^ name) (field ~what name j)
let str_field ~what name j = str_of_json ~what:(what ^ "." ^ name) (field ~what name j)

let int_array_of_json ~what j =
  Array.of_list (List.map (int_of_json ~what) (list_of_json ~what j))

let json_of_int_array a =
  Json.Arr (Array.to_list (Array.map (fun i -> Json.Num (float_of_int i)) a))

let float_array_of_json ~what j =
  Array.of_list (List.map (float_of_json ~what) (list_of_json ~what j))

let json_of_float_array a = Json.Arr (Array.to_list (Array.map json_of_float a))

(* --- packed numeric payloads ------------------------------------------- *)

(* The disk store's bulk arrays (interval triples, per-TB cost vectors,
   encoded relations) persist as ONE JSON string of packed tokens instead
   of a JSON array: the generic parser boxes every number through a
   substring, float_of_string and a list cons, which dominates disk-warm
   preparation wall-clock, while a packed payload is a single string token
   the readers below scan in one pass. *)

let json_of_packed_ints a =
  let buf = Buffer.create ((4 * Array.length a) + 8) in
  Array.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int v))
    a;
  Json.Str (Buffer.contents buf)

let packed_ints_of_json ~what j =
  let s = str_of_json ~what j in
  let n = String.length s in
  if n = 0 then [||]
  else begin
    let count = ref 1 in
    String.iter (fun c -> if c = ',' then incr count) s;
    let out = Array.make !count 0 in
    let pos = ref 0 in
    let digit c = c >= '0' && c <= '9' in
    for i = 0 to !count - 1 do
      if i > 0 then
        if !pos < n && s.[!pos] = ',' then incr pos
        else bad "%s: malformed packed integers" what;
      let neg = !pos < n && s.[!pos] = '-' in
      if neg then incr pos;
      if not (!pos < n && digit s.[!pos]) then bad "%s: malformed packed integer" what;
      let v = ref 0 in
      while !pos < n && digit s.[!pos] do
        v := (!v * 10) + (Char.code s.[!pos] - Char.code '0');
        incr pos
      done;
      out.(i) <- (if neg then - !v else !v)
    done;
    if !pos <> n then bad "%s: trailing garbage in packed integers" what;
    out
  end

let json_of_packed_floats a =
  let buf = Buffer.create (16 * Array.length a) in
  Array.iter (fun f -> Buffer.add_string buf (Printf.sprintf "%016Lx" (Int64.bits_of_float f))) a;
  Json.Str (Buffer.contents buf)

let packed_floats_of_json ~what j =
  let s = str_of_json ~what j in
  let n = String.length s in
  if n mod 16 <> 0 then bad "%s: packed float payload length %d not a multiple of 16" what n;
  let nib c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> bad "%s: invalid hex digit %C in packed floats" what c
  in
  Array.init (n / 16) (fun i ->
      let bits = ref 0L in
      for k = 16 * i to (16 * i) + 15 do
        bits := Int64.logor (Int64.shift_left !bits 4) (Int64.of_int (nib s.[k]))
      done;
      Int64.float_of_bits !bits)

(* Delta + run-length packing: the store's integer payloads are dominated
   by structured sequences — monotone id lists, affine per-TB address
   progressions, step-function parent maps — whose successive differences
   are long runs of one constant.  The token stream covers the DELTA
   sequence (the first delta is from 0): [D] is one delta, [N*D] repeats
   delta D N times.  A structureless sequence degrades to one token per
   element, no worse than the plain form. *)

let json_of_packed_ints_rle a =
  let buf = Buffer.create 256 in
  let emit n d =
    if Buffer.length buf > 0 then Buffer.add_char buf ',';
    if n > 1 then begin
      Buffer.add_string buf (string_of_int n);
      Buffer.add_char buf '*'
    end;
    Buffer.add_string buf (string_of_int d)
  in
  let prev = ref 0 in
  let run_d = ref 0 in
  let run_n = ref 0 in
  Array.iter
    (fun v ->
      let d = v - !prev in
      prev := v;
      if !run_n > 0 && d = !run_d then incr run_n
      else begin
        if !run_n > 0 then emit !run_n !run_d;
        run_d := d;
        run_n := 1
      end)
    a;
  if !run_n > 0 then emit !run_n !run_d;
  Json.Str (Buffer.contents buf)

(* Decoded payloads are capped so a garbled repeat count reads as Bad
   rather than an allocation blow-up: the store's never-raises contract
   covers hostile file contents. *)
let max_packed_elems = 1 lsl 30

let packed_ints_rle_of_json ~what j =
  let s = str_of_json ~what j in
  let n = String.length s in
  if n = 0 then [||]
  else begin
    let digit c = c >= '0' && c <= '9' in
    let pos = ref 0 in
    let parse_int () =
      let neg = !pos < n && s.[!pos] = '-' in
      if neg then incr pos;
      if not (!pos < n && digit s.[!pos]) then bad "%s: malformed packed integer" what;
      let v = ref 0 in
      while !pos < n && digit s.[!pos] do
        v := (!v * 10) + (Char.code s.[!pos] - Char.code '0');
        incr pos
      done;
      if neg then - !v else !v
    in
    (* One pass over the token stream into a doubling array (amortized
       O(n)); parsing twice just to pre-size costs more than the copies.
       Each token is at least two characters, so [n/2] elements covers
       every payload with no run longer than its own text. *)
    let out = ref (Array.make (max 16 ((n / 2) + 1)) 0) in
    let total = ref 0 in
    let ensure extra =
      let need = !total + extra in
      if need > max_packed_elems then bad "%s: packed payload too large" what;
      let cap = Array.length !out in
      if need > cap then begin
        let ncap = ref (cap * 2) in
        while !ncap < need do
          ncap := !ncap * 2
        done;
        let na = Array.make !ncap 0 in
        Array.blit !out 0 na 0 !total;
        out := na
      end
    in
    let prev = ref 0 in
    let first = ref true in
    while !pos < n do
      if not !first then
        if s.[!pos] = ',' then incr pos else bad "%s: malformed packed run" what;
      first := false;
      let x = parse_int () in
      let reps, d =
        if !pos < n && s.[!pos] = '*' then begin
          incr pos;
          if x < 1 || x > max_packed_elems then bad "%s: bad repeat count" what;
          (x, parse_int ())
        end
        else (1, x)
      in
      ensure reps;
      let o = !out in
      for k = !total to !total + reps - 1 do
        prev := !prev + d;
        o.(k) <- !prev
      done;
      total := !total + reps
    done;
    if !total = Array.length !out then !out else Array.sub !out 0 !total
  end

(* Float payloads run-length over identical IEEE-754 bit patterns (no
   deltas — repeated per-TB costs repeat exactly): [HEX] or [N*HEX]. *)
let json_of_packed_floats_rle a =
  let buf = Buffer.create 256 in
  let emit n bits =
    if Buffer.length buf > 0 then Buffer.add_char buf ',';
    if n > 1 then begin
      Buffer.add_string buf (string_of_int n);
      Buffer.add_char buf '*'
    end;
    Buffer.add_string buf (Printf.sprintf "%016Lx" bits)
  in
  let run_bits = ref 0L in
  let run_n = ref 0 in
  Array.iter
    (fun f ->
      let bits = Int64.bits_of_float f in
      if !run_n > 0 && bits = !run_bits then incr run_n
      else begin
        if !run_n > 0 then emit !run_n !run_bits;
        run_bits := bits;
        run_n := 1
      end)
    a;
  if !run_n > 0 then emit !run_n !run_bits;
  Json.Str (Buffer.contents buf)

let packed_floats_rle_of_json ~what j =
  let s = str_of_json ~what j in
  let n = String.length s in
  if n = 0 then [||]
  else begin
    let digit c = c >= '0' && c <= '9' in
    let pos = ref 0 in
    let parse_count () =
      let v = ref 0 in
      if not (!pos < n && digit s.[!pos]) then bad "%s: malformed repeat count" what;
      while !pos < n && digit s.[!pos] do
        v := (!v * 10) + (Char.code s.[!pos] - Char.code '0');
        incr pos
      done;
      !v
    in
    let nib c =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> bad "%s: invalid hex digit %C in packed floats" what c
    in
    let parse_hex () =
      if !pos + 16 > n then bad "%s: truncated float bits" what;
      let bits = ref 0L in
      for k = !pos to !pos + 15 do
        bits := Int64.logor (Int64.shift_left !bits 4) (Int64.of_int (nib s.[k]))
      done;
      pos := !pos + 16;
      !bits
    in
    (* One pass into a doubling array, as for the integer payloads; a
       token is at least 16 hex digits, sizing the common exact case. *)
    let out = ref (Array.make (max 16 ((n / 16) + 1)) 0.0) in
    let total = ref 0 in
    let ensure extra =
      let need = !total + extra in
      if need > max_packed_elems then bad "%s: packed payload too large" what;
      let cap = Array.length !out in
      if need > cap then begin
        let ncap = ref (cap * 2) in
        while !ncap < need do
          ncap := !ncap * 2
        done;
        let na = Array.make !ncap 0.0 in
        Array.blit !out 0 na 0 !total;
        out := na
      end
    in
    let first = ref true in
    while !pos < n do
      if not !first then
        if s.[!pos] = ',' then incr pos else bad "%s: malformed packed run" what;
      first := false;
      (* [N*HEX] when a '*' follows a decimal prefix; a bare token is all
         hex, so a leading digit run is only a count if '*' terminates it. *)
      let star =
        let i = ref !pos in
        while !i < n && digit s.[!i] do
          incr i
        done;
        !i < n && s.[!i] = '*'
      in
      let reps =
        if star then begin
          let r = parse_count () in
          if r < 1 || r > max_packed_elems then bad "%s: bad repeat count" what;
          incr pos;
          r
        end
        else 1
      in
      let bits = parse_hex () in
      ensure reps;
      let o = !out in
      let f = Int64.float_of_bits bits in
      for k = !total to !total + reps - 1 do
        o.(k) <- f
      done;
      total := !total + reps
    done;
    if !total = Array.length !out then !out else Array.sub !out 0 !total
  end

(* Relations persist in their pattern-aware Table I encoded form; decode
   reconstructs the bipartite graph exactly (the Encode round-trip property
   in test/test_depgraph.ml is what makes this safe). *)
let json_of_relation ~n_parents ~n_children rel =
  let ja i = Json.Num (float_of_int i) in
  match Encode.encode ~n_parents ~n_children rel with
  | Encode.Enc_independent { n_parents; n_children } ->
    Json.Obj [ ("k", Json.Str "ind"); ("np", ja n_parents); ("nc", ja n_children) ]
  | Encode.Enc_full { n_parents; n_children } ->
    Json.Obj [ ("k", Json.Str "full"); ("np", ja n_parents); ("nc", ja n_children) ]
  | Encode.Enc_one_to_one { n } -> Json.Obj [ ("k", Json.Str "o2o"); ("n", ja n) ]
  | Encode.Enc_one_to_n { n_parents; parent_of } ->
    Json.Obj [ ("k", Json.Str "o2n"); ("np", ja n_parents); ("po", json_of_int_array parent_of) ]
  | Encode.Enc_n_to_one { n_children; child_of } ->
    Json.Obj [ ("k", Json.Str "n2o"); ("nc", ja n_children); ("co", json_of_int_array child_of) ]
  | Encode.Enc_n_group { group_of_parent; group_of_child } ->
    Json.Obj
      [
        ("k", Json.Str "grp");
        ("gp", json_of_int_array group_of_parent);
        ("gc", json_of_int_array group_of_child);
      ]
  | Encode.Enc_overlapped { n_parents; windows } ->
    Json.Obj
      [
        ("k", Json.Str "ovl");
        ("np", ja n_parents);
        ( "w",
          Json.Arr
            (Array.to_list
               (Array.map (fun (f, l) -> Json.Arr [ ja f; ja l ]) windows)) );
      ]
  | Encode.Enc_irregular { n_parents; parents_of } ->
    Json.Obj
      [
        ("k", Json.Str "irr");
        ("np", ja n_parents);
        ("po", Json.Arr (Array.to_list (Array.map json_of_int_array parents_of)));
      ]

let relation_of_json j =
  let what = "relation" in
  let enc =
    match str_field ~what "k" j with
    | "ind" ->
      Encode.Enc_independent
        { n_parents = int_field ~what "np" j; n_children = int_field ~what "nc" j }
    | "full" ->
      Encode.Enc_full { n_parents = int_field ~what "np" j; n_children = int_field ~what "nc" j }
    | "o2o" -> Encode.Enc_one_to_one { n = int_field ~what "n" j }
    | "o2n" ->
      Encode.Enc_one_to_n
        {
          n_parents = int_field ~what "np" j;
          parent_of = int_array_of_json ~what (field ~what "po" j);
        }
    | "n2o" ->
      Encode.Enc_n_to_one
        {
          n_children = int_field ~what "nc" j;
          child_of = int_array_of_json ~what (field ~what "co" j);
        }
    | "grp" ->
      Encode.Enc_n_group
        {
          group_of_parent = int_array_of_json ~what (field ~what "gp" j);
          group_of_child = int_array_of_json ~what (field ~what "gc" j);
        }
    | "ovl" ->
      Encode.Enc_overlapped
        {
          n_parents = int_field ~what "np" j;
          windows =
            Array.of_list
              (List.map
                 (fun w ->
                   match list_of_json ~what w with
                   | [ f; l ] -> (int_of_json ~what f, int_of_json ~what l)
                   | _ -> bad "%s: window needs [first, len]" what)
                 (list_of_json ~what (field ~what "w" j)));
        }
    | "irr" ->
      Encode.Enc_irregular
        {
          n_parents = int_field ~what "np" j;
          parents_of =
            Array.of_list
              (List.map (int_array_of_json ~what) (list_of_json ~what (field ~what "po" j)));
        }
    | k -> bad "%s: unknown kind %S" what k
  in
  (* [decode] range-checks node indices with [Invalid_argument]; fold that
     into [Bad] so corrupt payloads stay inside the never-raises contract. *)
  try Encode.decode enc with Invalid_argument msg -> bad "%s: %s" what msg

(* The packed twin of the relation codec, used by the disk store: same
   kinds and fields, but every array payload is a packed-integer string
   ([windows] flatten to [first, len] pairs, [parents_of] rows are
   length-prefixed).  Graph keeps the plain form — captured graphs are
   user-inspectable artifacts; store entries are a cache. *)
let json_of_relation_packed ~n_parents ~n_children rel =
  let ja i = Json.Num (float_of_int i) in
  match Encode.encode ~n_parents ~n_children rel with
  | Encode.Enc_independent { n_parents; n_children } ->
    Json.Obj [ ("k", Json.Str "ind"); ("np", ja n_parents); ("nc", ja n_children) ]
  | Encode.Enc_full { n_parents; n_children } ->
    Json.Obj [ ("k", Json.Str "full"); ("np", ja n_parents); ("nc", ja n_children) ]
  | Encode.Enc_one_to_one { n } -> Json.Obj [ ("k", Json.Str "o2o"); ("n", ja n) ]
  | Encode.Enc_one_to_n { n_parents; parent_of } ->
    Json.Obj
      [ ("k", Json.Str "o2n"); ("np", ja n_parents); ("po", json_of_packed_ints_rle parent_of) ]
  | Encode.Enc_n_to_one { n_children; child_of } ->
    Json.Obj
      [ ("k", Json.Str "n2o"); ("nc", ja n_children); ("co", json_of_packed_ints_rle child_of) ]
  | Encode.Enc_n_group { group_of_parent; group_of_child } ->
    Json.Obj
      [
        ("k", Json.Str "grp");
        ("gp", json_of_packed_ints_rle group_of_parent);
        ("gc", json_of_packed_ints_rle group_of_child);
      ]
  | Encode.Enc_overlapped { n_parents; windows } ->
    let flat = Array.make (2 * Array.length windows) 0 in
    Array.iteri
      (fun i (f, l) ->
        flat.(2 * i) <- f;
        flat.((2 * i) + 1) <- l)
      windows;
    Json.Obj [ ("k", Json.Str "ovl"); ("np", ja n_parents); ("w", json_of_packed_ints_rle flat) ]
  | Encode.Enc_irregular { n_parents; parents_of } ->
    let total = Array.fold_left (fun acc row -> acc + 1 + Array.length row) 1 parents_of in
    let flat = Array.make total 0 in
    flat.(0) <- Array.length parents_of;
    let pos = ref 1 in
    Array.iter
      (fun row ->
        flat.(!pos) <- Array.length row;
        incr pos;
        Array.iter
          (fun v ->
            flat.(!pos) <- v;
            incr pos)
          row)
      parents_of;
    Json.Obj [ ("k", Json.Str "irr"); ("np", ja n_parents); ("po", json_of_packed_ints_rle flat) ]

let relation_of_packed_json j =
  let what = "relation" in
  let enc =
    match str_field ~what "k" j with
    | "ind" ->
      Encode.Enc_independent
        { n_parents = int_field ~what "np" j; n_children = int_field ~what "nc" j }
    | "full" ->
      Encode.Enc_full { n_parents = int_field ~what "np" j; n_children = int_field ~what "nc" j }
    | "o2o" -> Encode.Enc_one_to_one { n = int_field ~what "n" j }
    | "o2n" ->
      Encode.Enc_one_to_n
        {
          n_parents = int_field ~what "np" j;
          parent_of = packed_ints_rle_of_json ~what (field ~what "po" j);
        }
    | "n2o" ->
      Encode.Enc_n_to_one
        {
          n_children = int_field ~what "nc" j;
          child_of = packed_ints_rle_of_json ~what (field ~what "co" j);
        }
    | "grp" ->
      Encode.Enc_n_group
        {
          group_of_parent = packed_ints_rle_of_json ~what (field ~what "gp" j);
          group_of_child = packed_ints_rle_of_json ~what (field ~what "gc" j);
        }
    | "ovl" ->
      let flat = packed_ints_rle_of_json ~what (field ~what "w" j) in
      if Array.length flat mod 2 <> 0 then bad "%s: window payload length must be even" what;
      Encode.Enc_overlapped
        {
          n_parents = int_field ~what "np" j;
          windows =
            Array.init (Array.length flat / 2) (fun i -> (flat.(2 * i), flat.((2 * i) + 1)));
        }
    | "irr" ->
      let flat = packed_ints_rle_of_json ~what (field ~what "po" j) in
      let len = Array.length flat in
      let pos = ref 0 in
      let take () =
        if !pos >= len then bad "%s: truncated irregular payload" what
        else begin
          let v = flat.(!pos) in
          incr pos;
          v
        end
      in
      let nrows = take () in
      if nrows < 0 then bad "%s: negative row count" what;
      let rows = Array.make nrows [||] in
      for i = 0 to nrows - 1 do
        let rlen = take () in
        if rlen < 0 then bad "%s: negative row length" what;
        let row = Array.make rlen 0 in
        for k = 0 to rlen - 1 do
          row.(k) <- take ()
        done;
        rows.(i) <- row
      done;
      if !pos <> len then bad "%s: trailing data in irregular payload" what;
      Encode.Enc_irregular { n_parents = int_field ~what "np" j; parents_of = rows }
    | k -> bad "%s: unknown kind %S" what k
  in
  (* [decode] range-checks node indices with [Invalid_argument]; fold that
     into [Bad] so corrupt payloads stay inside the never-raises contract. *)
  try Encode.decode enc with Invalid_argument msg -> bad "%s: %s" what msg
