module Config = Bm_gpu.Config
module Bipartite = Bm_depgraph.Bipartite
module Pattern = Bm_depgraph.Pattern
module Encode = Bm_depgraph.Encode

(* TB ids are 32 bits plus 2 bits of relative kernel id (supports 4
   concurrently resident kernels). *)
let tb_id_bits = 32 + 2

let dlb_entry_bits (cfg : Config.t) =
  tb_id_bits + (cfg.Config.dlb_children_per_entry * 32)

let pcb_entry_bits (cfg : Config.t) =
  (* Counter width follows the degree cap: 64 parents -> 6 bits. *)
  let counter_bits =
    let rec bits n acc = if n <= 1 then acc else bits (n / 2) (acc + 1) in
    bits cfg.Config.max_parent_degree 0
  in
  tb_id_bits + counter_bits

let area_bytes cfg =
  let bits =
    (cfg.Config.dlb_entries * dlb_entry_bits cfg) + (cfg.Config.pcb_entries * pcb_entry_bits cfg)
  in
  (bits + 7) / 8

(* Table pressure of one launched kernel pair.  A parent with out-degree d
   occupies ceil(d / children_per_entry) DLB entries; the PCB holds one
   counter per child TB.  Only the Graph relation consults the tables —
   Independent needs none and Fully_connected is a single gate flag. *)
let dlb_entries_needed (cfg : Config.t) relation =
  match relation with
  | Bipartite.Independent | Bipartite.Fully_connected -> 0
  | Bipartite.Graph g ->
    Array.fold_left
      (fun acc cs ->
        acc
        + ((Array.length cs + cfg.Config.dlb_children_per_entry - 1)
          / cfg.Config.dlb_children_per_entry))
      0 g.Bipartite.children_of

let pcb_counters_needed relation ~n_children =
  match relation with
  | Bipartite.Independent | Bipartite.Fully_connected -> 0
  | Bipartite.Graph _ -> n_children

let dlb_spill_bytes (cfg : Config.t) ~needed =
  let over = max 0 (needed - cfg.Config.dlb_entries) in
  over * ((dlb_entry_bits cfg + 7) / 8)

let pcb_spill_bytes (cfg : Config.t) ~needed =
  let over = max 0 (needed - cfg.Config.pcb_entries) in
  over * ((pcb_entry_bits cfg + 7) / 8)

(* Per-app occupancy attribution for a contended table (DLB or PCB) under
   concurrent execution.  Under a shared spatial policy every app charges
   one pool; under partitioning each app owns a pool sized to its slice.
   Demand beyond a pool's capacity evicts entries to global memory; the
   tracker counts those newly-evicted entries as they appear, attributed
   to the acquiring app, so eviction counters are monotone even though
   occupancy itself rises and falls. *)
module Occupancy = struct
  type t = {
    caps : int array;      (* capacity per pool *)
    pool_of : int array;   (* app -> pool *)
    used : int array;      (* live entries per pool *)
    high : int array;      (* pool high-water *)
    app_used : int array;  (* live entries per app *)
    app_high : int array;  (* app high-water *)
    app_evicted : int array;  (* entries this app pushed over capacity *)
  }

  let create_shared ~capacity ~napps =
    if napps < 1 then invalid_arg "Occupancy.create_shared: napps < 1";
    {
      caps = [| capacity |];
      pool_of = Array.make napps 0;
      used = [| 0 |];
      high = [| 0 |];
      app_used = Array.make napps 0;
      app_high = Array.make napps 0;
      app_evicted = Array.make napps 0;
    }

  let create_partitioned ~caps =
    let napps = Array.length caps in
    if napps < 1 then invalid_arg "Occupancy.create_partitioned: no pools";
    {
      caps = Array.copy caps;
      pool_of = Array.init napps (fun i -> i);
      used = Array.make napps 0;
      high = Array.make napps 0;
      app_used = Array.make napps 0;
      app_high = Array.make napps 0;
      app_evicted = Array.make napps 0;
    }

  let acquire t ~app n =
    if n < 0 then invalid_arg "Occupancy.acquire: negative demand";
    let p = t.pool_of.(app) in
    let over_before = max 0 (t.used.(p) - t.caps.(p)) in
    t.used.(p) <- t.used.(p) + n;
    t.app_used.(app) <- t.app_used.(app) + n;
    if t.used.(p) > t.high.(p) then t.high.(p) <- t.used.(p);
    if t.app_used.(app) > t.app_high.(app) then t.app_high.(app) <- t.app_used.(app);
    let newly_evicted = max 0 (t.used.(p) - t.caps.(p)) - over_before in
    t.app_evicted.(app) <- t.app_evicted.(app) + newly_evicted;
    newly_evicted

  let release t ~app n =
    if n < 0 then invalid_arg "Occupancy.release: negative demand";
    let p = t.pool_of.(app) in
    if t.app_used.(app) < n || t.used.(p) < n then
      failwith
        (Printf.sprintf "Occupancy.release: app %d releasing %d with app=%d pool=%d live" app n
           t.app_used.(app) t.used.(p));
    t.used.(p) <- t.used.(p) - n;
    t.app_used.(app) <- t.app_used.(app) - n

  let pool_used t ~app = t.used.(t.pool_of.(app))
  let app_used t app = t.app_used.(app)
  let pool_high t ~app = t.high.(t.pool_of.(app))
  let app_high t app = t.app_high.(app)
  let app_evicted t app = t.app_evicted.(app)
  let evicted t = Array.fold_left ( + ) 0 t.app_evicted
end

let transaction_bytes = 32

let to_transactions bytes = float_of_int ((bytes + transaction_bytes - 1) / transaction_bytes)

let dep_mem_requests (cfg : Config.t) ~n_parents ~n_children relation =
  match relation with
  | Bipartite.Independent -> 1.0
  | Bipartite.Fully_connected ->
    (* A single flag installed and read back: the consumer is simply gated
       on the producer's completion. *)
    2.0
  | Bipartite.Graph g ->
    let sizes = Encode.measure relation in
    let install =
      to_transactions sizes.Encode.encoded_bytes +. to_transactions n_children
      (* one byte-wide counter per child, packed *)
    in
    let entry_fetches =
      match sizes.Encode.pattern with
      | Pattern.Irregular | Pattern.Overlapped ->
        (* Explicit child lists: a parent with out-degree d occupies
           ceil(d / children_per_entry) DLB entries, each one fetch. *)
        Array.fold_left
          (fun acc cs ->
            acc
            +. float_of_int
                 ((Array.length cs + cfg.Config.dlb_children_per_entry - 1)
                 / cfg.Config.dlb_children_per_entry))
          0.0 g.Bipartite.children_of
      | Pattern.Independent | Pattern.Fully_connected | Pattern.One_to_one | Pattern.One_to_n
      | Pattern.N_to_one | Pattern.N_group ->
        (* Encoded patterns derive children arithmetically: the pattern
           descriptors are prefetched in batches of eight 32-bit words per
           32-byte transaction. *)
        ceil (float_of_int n_parents /. 8.0)
    in
    (* 6-bit counters are packed eight to a transaction. *)
    let counter_traffic = ceil (float_of_int n_children /. 8.0) in
    install +. entry_fetches +. counter_traffic
