(** Architectural support in the TB scheduler (paper §III-D.1, Fig. 7).

    Two small buffers back the runtime dependency resolution:

    - the {e Dependency List Buffer} (DLB) caches the children lists of
      actively running parent TBs (896 entries, 4 child TB ids per entry;
      wider lists split across entries);
    - the {e Parent Counter Buffer} (PCB) caches the pending-parent counts
      of child TBs (896 entries, 6-bit counters — hence the 64-parent cap).

    Both are backed by the encoded graph in global memory, so dependency
    resolution costs extra memory requests (Fig. 13, ~1.36% on average).
    This module provides the area accounting and the traffic model. *)

val dlb_entry_bits : Bm_gpu.Config.t -> int
val pcb_entry_bits : Bm_gpu.Config.t -> int

val area_bytes : Bm_gpu.Config.t -> int
(** Total SRAM for DLB + PCB (the paper reports ~22 KB). *)

val dlb_entries_needed : Bm_gpu.Config.t -> Bm_depgraph.Bipartite.relation -> int
(** DLB entries one kernel pair occupies: a parent with out-degree [d]
    takes [ceil (d / children_per_entry)] entries.  [0] unless the relation
    is an explicit graph. *)

val pcb_counters_needed : Bm_depgraph.Bipartite.relation -> n_children:int -> int
(** PCB counters occupied: one per child TB for a graph relation, else 0. *)

val dlb_spill_bytes : Bm_gpu.Config.t -> needed:int -> int
val pcb_spill_bytes : Bm_gpu.Config.t -> needed:int -> int
(** Bytes of dependency metadata pushed to global memory when the demand
    exceeds the table capacity (entries over capacity x entry width). *)

(** Per-app occupancy attribution for a contended DLB or PCB under
    concurrent execution ({!Multi}).  Shared spatial policy: one pool, all
    apps charge it, contention is real.  Partitioned: one pool per app,
    each sized to its slice.  Demand beyond capacity counts as evicted
    entries (to global memory), attributed to the acquiring app; eviction
    totals are monotone, and {!Occupancy.release} rejects going negative
    so accounting bugs surface as failures rather than skewed metrics. *)
module Occupancy : sig
  type t

  val create_shared : capacity:int -> napps:int -> t
  val create_partitioned : caps:int array -> t

  val acquire : t -> app:int -> int -> int
  (** Charge [n] entries to [app]'s pool; returns the number of entries
      newly pushed over capacity by this acquisition (0 when it fits). *)

  val release : t -> app:int -> int -> unit
  (** Return [n] entries.  Fails if it would drive the app's or the
      pool's live count negative. *)

  val pool_used : t -> app:int -> int
  val app_used : t -> int -> int
  val pool_high : t -> app:int -> int
  val app_high : t -> int -> int
  val app_evicted : t -> int -> int
  val evicted : t -> int
end

val dep_mem_requests :
  Bm_gpu.Config.t -> n_parents:int -> n_children:int -> Bm_depgraph.Bipartite.relation -> float
(** 32-byte memory transactions needed to install and resolve one kernel
    pair's dependency graph: writing the encoded graph and initial counters
    at (pre-)launch, fetching each scheduled parent TB's dependency-list
    entries, and fetching/retiring each child's parent counter. *)
