module Fingerprint = Bm_analysis.Fingerprint
module Costmodel = Bm_gpu.Costmodel
module Symeval = Bm_analysis.Symeval
module Footprint = Bm_analysis.Footprint
module Lru = Bm_engine.Lru
module Metrics = Bm_metrics.Metrics

type pair_result = {
  pr_relation : Bm_depgraph.Bipartite.relation;
  pr_pattern : Bm_depgraph.Pattern.t;
  pr_sizes : Bm_depgraph.Encode.sizes;
}

type pair_key = {
  pk_producer : int;
  pk_pfl : Footprint.launch;
  pk_consumer : int;
  pk_cfl : Footprint.launch;
  pk_degree : int;
}

type rw_key = {
  rk_kid : int;
  rk_fl : Footprint.launch;
  rk_buffers : (int * int * int) list;
}

type t = {
  (* Hash-consing: canonical fingerprint -> interned id.  LRU-bounded like
     everything else; ids are monotonic, so entries of an evicted id simply
     age out of the downstream tables. *)
  intern : (Fingerprint.t, int) Lru.t;
  mutable next_id : int;
  (* id -> canonical fingerprint string, the disk tier's key material.
     Only populated when a store is attached; if an entry ages out, disk
     lookups for that id are silently skipped (a plain miss). *)
  fpstrs : (int, string) Lru.t;
  store : Store.t option;
  analysis : (int, Symeval.result) Lru.t;
  footprints : (int * Footprint.launch, Footprint.kernel_footprints) Lru.t;
  profiles : (int * Footprint.launch, Costmodel.profile) Lru.t;
  rws : (rw_key, Reorder.rw) Lru.t;
  pairs : (pair_key, pair_result) Lru.t;
  mutable kernel_hits : int;
  mutable kernel_misses : int;
  mutable footprint_hits : int;
  mutable footprint_misses : int;
  mutable profile_hits : int;
  mutable profile_misses : int;
  mutable rw_hits : int;
  mutable rw_misses : int;
  mutable pair_hits : int;
  mutable pair_misses : int;
}

let create ?(kernel_capacity = 256) ?(pair_capacity = 8192) ?store () =
  {
    intern = Lru.create ~capacity:kernel_capacity;
    next_id = 0;
    fpstrs = Lru.create ~capacity:kernel_capacity;
    store;
    analysis = Lru.create ~capacity:kernel_capacity;
    footprints = Lru.create ~capacity:pair_capacity;
    profiles = Lru.create ~capacity:pair_capacity;
    rws = Lru.create ~capacity:pair_capacity;
    pairs = Lru.create ~capacity:pair_capacity;
    kernel_hits = 0;
    kernel_misses = 0;
    footprint_hits = 0;
    footprint_misses = 0;
    profile_hits = 0;
    profile_misses = 0;
    rw_hits = 0;
    rw_misses = 0;
    pair_hits = 0;
    pair_misses = 0;
  }

let store t = t.store

let kernel_id t kernel =
  let fp = Fingerprint.of_kernel kernel in
  match Lru.find t.intern fp with
  | Some id -> id
  | None ->
    let id = t.next_id in
    t.next_id <- id + 1;
    Lru.add t.intern fp id;
    if t.store <> None then Lru.add t.fpstrs id (Fingerprint.to_string fp);
    id

(* The disk tier sits below the in-process LRU: an LRU miss consults the
   store before computing, and a computed value is written through.  Disk
   hits still count as in-memory misses — the two counter families describe
   different tiers. *)
let disk_tier t ~kid ~dkey ~disk_find ~disk_put compute =
  match t.store with
  | None -> compute ()
  | Some s -> (
    match Lru.find t.fpstrs kid with
    | None -> compute ()
    | Some fps -> (
      let key = dkey fps in
      match disk_find s ~key with
      | Some v -> v
      | None ->
        let v = compute () in
        disk_put s ~key v;
        v))

let analysis t ~kid compute =
  match Lru.find t.analysis kid with
  | Some r ->
    t.kernel_hits <- t.kernel_hits + 1;
    r
  | None ->
    t.kernel_misses <- t.kernel_misses + 1;
    let r = compute () in
    Lru.add t.analysis kid r;
    r

let footprint t ~kid ~fl compute =
  let key = (kid, fl) in
  match Lru.find t.footprints key with
  | Some fp ->
    t.footprint_hits <- t.footprint_hits + 1;
    fp
  | None ->
    t.footprint_misses <- t.footprint_misses + 1;
    let fp =
      disk_tier t ~kid
        ~dkey:(fun fps -> Store.footprint_key ~fp:fps ~fl)
        ~disk_find:Store.find_footprints ~disk_put:Store.put_footprints compute
    in
    Lru.add t.footprints key fp;
    fp

let profile t ~kid ~fl compute =
  let key = (kid, fl) in
  match Lru.find t.profiles key with
  | Some p ->
    t.profile_hits <- t.profile_hits + 1;
    p
  | None ->
    t.profile_misses <- t.profile_misses + 1;
    let p =
      disk_tier t ~kid
        ~dkey:(fun fps -> Store.profile_key ~fp:fps ~fl)
        ~disk_find:Store.find_profile ~disk_put:Store.put_profile compute
    in
    Lru.add t.profiles key p;
    p

let rw t ~kid ~fl ~buffers compute =
  let key = { rk_kid = kid; rk_fl = fl; rk_buffers = buffers } in
  match Lru.find t.rws key with
  | Some rw ->
    t.rw_hits <- t.rw_hits + 1;
    rw
  | None ->
    t.rw_misses <- t.rw_misses + 1;
    let rw =
      disk_tier t ~kid
        ~dkey:(fun fps -> Store.rw_key ~fp:fps ~fl ~buffers)
        ~disk_find:Store.find_rw ~disk_put:Store.put_rw compute
    in
    Lru.add t.rws key rw;
    rw

let pair t ~pkid ~pfl ~ckid ~cfl ~max_degree compute =
  let key =
    { pk_producer = pkid; pk_pfl = pfl; pk_consumer = ckid; pk_cfl = cfl; pk_degree = max_degree }
  in
  match Lru.find t.pairs key with
  | Some pr ->
    t.pair_hits <- t.pair_hits + 1;
    pr
  | None ->
    t.pair_misses <- t.pair_misses + 1;
    let pr =
      match t.store with
      | None -> compute ()
      | Some s -> (
        match (Lru.find t.fpstrs pkid, Lru.find t.fpstrs ckid) with
        | Some pfps, Some cfps -> (
          let dkey = Store.pair_key ~pfp:pfps ~pfl ~cfp:cfps ~cfl ~max_degree in
          (* Only the relation persists; the pattern classification and
             encoded-storage sizes are recomputed on load, exactly as the
             cold path derives them from the fresh relation. *)
          let n_parents = Bm_ptx.Types.dim3_count pfl.Footprint.grid in
          let n_children = Bm_ptx.Types.dim3_count cfl.Footprint.grid in
          match Store.find_relation s ~key:dkey with
          | Some relation ->
            let sizes =
              match relation with
              | Bm_depgraph.Bipartite.Fully_connected ->
                Bm_depgraph.Encode.measure_full ~n_parents ~n_children
              | Bm_depgraph.Bipartite.Independent | Bm_depgraph.Bipartite.Graph _ ->
                Bm_depgraph.Encode.measure relation
            in
            {
              pr_relation = relation;
              pr_pattern = Bm_depgraph.Pattern.classify relation;
              pr_sizes = sizes;
            }
          | None ->
            let pr = compute () in
            Store.put_relation s ~key:dkey ~n_parents ~n_children pr.pr_relation;
            pr)
        | _ -> compute ())
    in
    Lru.add t.pairs key pr;
    pr

type counters = {
  kernel_hits : int;
  kernel_misses : int;
  kernel_evictions : int;
  footprint_hits : int;
  footprint_misses : int;
  footprint_evictions : int;
  profile_hits : int;
  profile_misses : int;
  profile_evictions : int;
  rw_hits : int;
  rw_misses : int;
  rw_evictions : int;
  pair_hits : int;
  pair_misses : int;
  pair_evictions : int;
  interned : int;
}

let counters (c : t) =
  {
    kernel_hits = c.kernel_hits;
    kernel_misses = c.kernel_misses;
    kernel_evictions = Lru.evictions c.analysis;
    footprint_hits = c.footprint_hits;
    footprint_misses = c.footprint_misses;
    footprint_evictions = Lru.evictions c.footprints;
    profile_hits = c.profile_hits;
    profile_misses = c.profile_misses;
    profile_evictions = Lru.evictions c.profiles;
    rw_hits = c.rw_hits;
    rw_misses = c.rw_misses;
    rw_evictions = Lru.evictions c.rws;
    pair_hits = c.pair_hits;
    pair_misses = c.pair_misses;
    pair_evictions = Lru.evictions c.pairs;
    interned = c.next_id;
  }

let export t registry =
  let c = counters t in
  let put name v = Metrics.add (Metrics.counter registry name) (float_of_int v) in
  put "prep.cache.kernel.hits" c.kernel_hits;
  put "prep.cache.kernel.misses" c.kernel_misses;
  put "prep.cache.kernel.evictions" c.kernel_evictions;
  put "prep.cache.footprint.hits" c.footprint_hits;
  put "prep.cache.footprint.misses" c.footprint_misses;
  put "prep.cache.footprint.evictions" c.footprint_evictions;
  put "prep.cache.profile.hits" c.profile_hits;
  put "prep.cache.profile.misses" c.profile_misses;
  put "prep.cache.profile.evictions" c.profile_evictions;
  put "prep.cache.rw.hits" c.rw_hits;
  put "prep.cache.rw.misses" c.rw_misses;
  put "prep.cache.rw.evictions" c.rw_evictions;
  put "prep.cache.pair.hits" c.pair_hits;
  put "prep.cache.pair.misses" c.pair_misses;
  put "prep.cache.pair.evictions" c.pair_evictions;
  put "prep.cache.interned" c.interned;
  match t.store with None -> () | Some s -> Store.export s registry
