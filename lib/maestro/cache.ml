module Fingerprint = Bm_analysis.Fingerprint
module Costmodel = Bm_gpu.Costmodel
module Symeval = Bm_analysis.Symeval
module Footprint = Bm_analysis.Footprint
module Lru = Bm_engine.Lru
module Metrics = Bm_metrics.Metrics

type pair_result = {
  pr_relation : Bm_depgraph.Bipartite.relation;
  pr_pattern : Bm_depgraph.Pattern.t;
  pr_sizes : Bm_depgraph.Encode.sizes;
}

type pair_key = {
  pk_producer : int;
  pk_pfl : Footprint.launch;
  pk_consumer : int;
  pk_cfl : Footprint.launch;
  pk_degree : int;
}

type t = {
  (* Hash-consing: canonical fingerprint -> interned id.  LRU-bounded like
     everything else; ids are monotonic, so entries of an evicted id simply
     age out of the downstream tables. *)
  intern : (Fingerprint.t, int) Lru.t;
  mutable next_id : int;
  analysis : (int, Symeval.result) Lru.t;
  footprints : (int * Footprint.launch, Footprint.kernel_footprints) Lru.t;
  profiles : (int * Footprint.launch, Costmodel.profile) Lru.t;
  pairs : (pair_key, pair_result) Lru.t;
  mutable kernel_hits : int;
  mutable kernel_misses : int;
  mutable footprint_hits : int;
  mutable footprint_misses : int;
  mutable profile_hits : int;
  mutable profile_misses : int;
  mutable pair_hits : int;
  mutable pair_misses : int;
}

let create ?(kernel_capacity = 256) ?(pair_capacity = 8192) () =
  {
    intern = Lru.create ~capacity:kernel_capacity;
    next_id = 0;
    analysis = Lru.create ~capacity:kernel_capacity;
    footprints = Lru.create ~capacity:pair_capacity;
    profiles = Lru.create ~capacity:pair_capacity;
    pairs = Lru.create ~capacity:pair_capacity;
    kernel_hits = 0;
    kernel_misses = 0;
    footprint_hits = 0;
    footprint_misses = 0;
    profile_hits = 0;
    profile_misses = 0;
    pair_hits = 0;
    pair_misses = 0;
  }

let kernel_id t kernel =
  let fp = Fingerprint.of_kernel kernel in
  match Lru.find t.intern fp with
  | Some id -> id
  | None ->
    let id = t.next_id in
    t.next_id <- id + 1;
    Lru.add t.intern fp id;
    id

let analysis t ~kid compute =
  match Lru.find t.analysis kid with
  | Some r ->
    t.kernel_hits <- t.kernel_hits + 1;
    r
  | None ->
    t.kernel_misses <- t.kernel_misses + 1;
    let r = compute () in
    Lru.add t.analysis kid r;
    r

let footprint t ~kid ~fl compute =
  let key = (kid, fl) in
  match Lru.find t.footprints key with
  | Some fp ->
    t.footprint_hits <- t.footprint_hits + 1;
    fp
  | None ->
    t.footprint_misses <- t.footprint_misses + 1;
    let fp = compute () in
    Lru.add t.footprints key fp;
    fp

let profile t ~kid ~fl compute =
  let key = (kid, fl) in
  match Lru.find t.profiles key with
  | Some p ->
    t.profile_hits <- t.profile_hits + 1;
    p
  | None ->
    t.profile_misses <- t.profile_misses + 1;
    let p = compute () in
    Lru.add t.profiles key p;
    p

let pair t ~pkid ~pfl ~ckid ~cfl ~max_degree compute =
  let key =
    { pk_producer = pkid; pk_pfl = pfl; pk_consumer = ckid; pk_cfl = cfl; pk_degree = max_degree }
  in
  match Lru.find t.pairs key with
  | Some pr ->
    t.pair_hits <- t.pair_hits + 1;
    pr
  | None ->
    t.pair_misses <- t.pair_misses + 1;
    let pr = compute () in
    Lru.add t.pairs key pr;
    pr

type counters = {
  kernel_hits : int;
  kernel_misses : int;
  kernel_evictions : int;
  footprint_hits : int;
  footprint_misses : int;
  footprint_evictions : int;
  profile_hits : int;
  profile_misses : int;
  profile_evictions : int;
  pair_hits : int;
  pair_misses : int;
  pair_evictions : int;
  interned : int;
}

let counters (c : t) =
  {
    kernel_hits = c.kernel_hits;
    kernel_misses = c.kernel_misses;
    kernel_evictions = Lru.evictions c.analysis;
    footprint_hits = c.footprint_hits;
    footprint_misses = c.footprint_misses;
    footprint_evictions = Lru.evictions c.footprints;
    profile_hits = c.profile_hits;
    profile_misses = c.profile_misses;
    profile_evictions = Lru.evictions c.profiles;
    pair_hits = c.pair_hits;
    pair_misses = c.pair_misses;
    pair_evictions = Lru.evictions c.pairs;
    interned = c.next_id;
  }

let export t registry =
  let c = counters t in
  let put name v = Metrics.add (Metrics.counter registry name) (float_of_int v) in
  put "prep.cache.kernel.hits" c.kernel_hits;
  put "prep.cache.kernel.misses" c.kernel_misses;
  put "prep.cache.kernel.evictions" c.kernel_evictions;
  put "prep.cache.footprint.hits" c.footprint_hits;
  put "prep.cache.footprint.misses" c.footprint_misses;
  put "prep.cache.footprint.evictions" c.footprint_evictions;
  put "prep.cache.profile.hits" c.profile_hits;
  put "prep.cache.profile.misses" c.profile_misses;
  put "prep.cache.profile.evictions" c.profile_evictions;
  put "prep.cache.pair.hits" c.pair_hits;
  put "prep.cache.pair.misses" c.pair_misses;
  put "prep.cache.pair.evictions" c.pair_evictions;
  put "prep.cache.interned" c.interned
