(* The persistent tier of the launch-time analysis cache: a disk-backed
   fingerprint store that makes every cold start warm.

   A key is structured: a small header line embedding the store schema
   version, the family tag and every launch-configuration field the
   artifact depends on, plus the full alpha-renamed structural kernel
   fingerprint text(s) — the complete serialization, not a digest, in the
   Fingerprint doctrine: a silent collision would merge two kernels'
   analyses and break cycle-exactness.

   Layout: fingerprint texts are content-addressed, written once at
   [<dir>/fpx/<md5(text)>.txt] and shared by every entry that references
   them (767 launches of one GRAMSCHM kernel intern its ~10 KB fingerprint
   once, not 767 times).  Each cached artifact is one small file at
   [<dir>/<family>/<md5(header, fp digests)>.json] echoing the header
   verbatim and the fingerprint digests.  A load verifies the header echo
   and then the interned texts against the lookup key's own fingerprint
   strings — memoized per process, and by physical equality on the hot
   path since {!Cache} interns the fingerprint strings too — so even an
   MD5 collision degrades to a stale miss, never a wrong value.  Keeping
   the bulky fingerprints out of the per-entry files is what makes
   disk-warm preparation read-bound: the bench perf gate commits to a
   speedup factor over cold analysis.

   Error semantics mirror Graph's Stale/Corrupt split, demoted from errors
   to misses: an absent file is a miss; an unparsable, truncated or
   garbled entry — or a missing/unreadable interned fingerprint — is a
   [corrupt] miss; a parsable entry whose schema, version, family, header
   or fingerprint identity disagrees is a [stale] miss.  A miss of any
   flavor recomputes and rewrites the entry (and its interned texts)
   cleanly.  Writes are atomic (unique temp file + rename), so concurrent
   writers — worker domains under --jobs, or parallel CI processes sharing
   one cache directory — can only ever publish whole files, and every
   value is a pure function of its key, so whichever writer wins the
   rename publishes the same bytes.  A failed write (read-only directory,
   disk full) bumps [write_errors] and nothing else: the store never
   raises. *)

module Json = Bm_metrics.Json
module Footprint = Bm_analysis.Footprint
module I = Bm_analysis.Sinterval
module Costmodel = Bm_gpu.Costmodel
module Bipartite = Bm_depgraph.Bipartite
module Metrics = Bm_metrics.Metrics
open Jsonc

let schema = "bm-store"
let schema_version = 1
let families = [ "fp"; "prof"; "rw"; "pair"; "fpx" ]

type t = {
  dir : string;
  read_only : bool;
  (* [part_digests] memoizes fingerprint-text MD5s by physical equality —
     Cache interns the texts, so the same boxed string arrives on every
     lookup; [verified] maps a digest to an interned text already checked
     against disk, so each fingerprint file is read at most once per
     process. *)
  mutable part_digests : (string * string) list;
  verified : (string, string) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable stale : int;
  mutable corrupt : int;
  mutable write_errors : int;
  mutable bytes_written : int;
}

let dir t = t.dir
let read_only t = t.read_only

(* --- opening ------------------------------------------------------------ *)

let rec mkdir_p path =
  if not (Sys.file_exists path) then begin
    let parent = Filename.dirname path in
    if parent <> path then mkdir_p parent;
    try Sys.mkdir path 0o755 with Sys_error _ -> ()
  end

let open_dir ?(read_only = false) dirname =
  if not read_only then mkdir_p dirname;
  if not (Sys.file_exists dirname) then
    Error (Printf.sprintf "cannot create cache directory %s" dirname)
  else if not (Sys.is_directory dirname) then
    Error (Printf.sprintf "%s is not a directory" dirname)
  else
    match Sys.readdir dirname with
    | exception Sys_error msg -> Error (Printf.sprintf "cannot read cache directory: %s" msg)
    | _ ->
      if not read_only then
        List.iter (fun f -> mkdir_p (Filename.concat dirname f)) families;
      Ok
        {
          dir = dirname;
          read_only;
          part_digests = [];
          verified = Hashtbl.create 64;
          hits = 0;
          misses = 0;
          stale = 0;
          corrupt = 0;
          write_errors = 0;
          bytes_written = 0;
        }

(* --- canonical keys ----------------------------------------------------- *)

(* Every key leads with a header line — the schema version, its family
   tag, then every config field the artifact depends on — followed by the
   full fingerprint text(s) as separate parts.  Changing any keyed field
   changes the entry digest, so the entry simply misses — staleness by
   construction, no invalidation pass needed. *)

type key = { header : string; parts : string list }

let key_string k = String.concat "\n" (k.header :: k.parts)

(* Headers are built in one [Buffer] pass — a disk-warm prepare renders a
   few thousand of them, and nested [sprintf]s showed up in its profile. *)
let add_int b n = Buffer.add_string b (string_of_int n)

let add_dim3 b (d : Bm_ptx.Types.dim3) =
  add_int b d.Bm_ptx.Types.dx;
  Buffer.add_char b ',';
  add_int b d.Bm_ptx.Types.dy;
  Buffer.add_char b ',';
  add_int b d.Bm_ptx.Types.dz

let add_launch b (fl : Footprint.launch) =
  Buffer.add_char b 'g';
  add_dim3 b fl.Footprint.grid;
  Buffer.add_string b ";b";
  add_dim3 b fl.Footprint.block;
  Buffer.add_char b ';';
  List.iteri
    (fun i (n, v) ->
      if i > 0 then Buffer.add_char b ';';
      Buffer.add_string b n;
      Buffer.add_char b '=';
      add_int b v)
    fl.Footprint.args

let launch_canonical (fl : Footprint.launch) =
  let b = Buffer.create 64 in
  add_launch b fl;
  Buffer.contents b

let key_header family = Printf.sprintf "%s/%d;%s" schema schema_version family

let hdr_fp = key_header "fp"
let hdr_prof = key_header "prof"
let hdr_rw = key_header "rw"
let hdr_pair = key_header "pair"

let launch_keyed hdr ~fp ~fl =
  let b = Buffer.create 96 in
  Buffer.add_string b hdr;
  Buffer.add_char b ';';
  add_launch b fl;
  { header = Buffer.contents b; parts = [ fp ] }

let footprint_key ~fp ~fl = launch_keyed hdr_fp ~fp ~fl
let profile_key ~fp ~fl = launch_keyed hdr_prof ~fp ~fl

let rw_key ~fp ~fl ~buffers =
  (* [buffers] are (id, base, bytes) triples from the launch arguments:
     rw-sets name buffer ids, which only mean anything relative to the
     app's buffer layout, so the layout is part of the key. *)
  let b = Buffer.create 128 in
  Buffer.add_string b hdr_rw;
  Buffer.add_char b ';';
  add_launch b fl;
  Buffer.add_string b ";bufs=";
  List.iteri
    (fun i (id, base, bytes) ->
      if i > 0 then Buffer.add_char b ',';
      add_int b id;
      Buffer.add_char b ':';
      add_int b base;
      Buffer.add_char b ':';
      add_int b bytes)
    buffers;
  { header = Buffer.contents b; parts = [ fp ] }

let pair_key ~pfp ~pfl ~cfp ~cfl ~max_degree =
  let b = Buffer.create 160 in
  Buffer.add_string b hdr_pair;
  Buffer.add_string b ";deg=";
  add_int b max_degree;
  Buffer.add_string b ";p=";
  add_launch b pfl;
  Buffer.add_string b ";c=";
  add_launch b cfl;
  { header = Buffer.contents b; parts = [ pfp; cfp ] }

(* --- value codecs ------------------------------------------------------- *)

(* Per-TB footprints dominate the store's volume, and disk-warm
   preparation must parse them at memory speed (the bench perf gate
   commits to a speedup factor over cold analysis), so they flatten to
   one packed integer stream with TB-level delta compression on top:
   consecutive thread blocks of an affine kernel touch intervals shifted
   by a constant, so whole runs of TBs share one delta row.

   Stream layout:
     T
     then TB groups, each either
       0, nr, nr x (lo, hi, stride), nw, nw x (lo, hi, stride)  explicit
       1, N, 3 x (nr + nw) deltas          N TBs, each = previous + deltas
   (a delta group reuses the previous TB's interval counts).  The stream
   then goes through the generic delta+RLE integer packing, which also
   collapses the repetition inside each delta row. *)
let flat_tb (fp : Footprint.t) =
  let arr l =
    Array.of_list (List.concat_map (fun (i : I.t) -> [ i.I.lo; i.I.hi; i.I.stride ]) l)
  in
  (arr fp.Footprint.freads, arr fp.Footprint.fwrites)

let json_of_footprint_tbs tbs =
  let out = ref [] in
  let push v = out := v :: !out in
  let flats = Array.map flat_tb tbs in
  let t = Array.length tbs in
  let delta (p : int array) (c : int array) =
    Array.init (Array.length c) (fun k -> c.(k) - p.(k))
  in
  push t;
  let i = ref 0 in
  while !i < t do
    let r, w = flats.(!i) in
    let same_shape j =
      let pr, pw = flats.(j - 1) and cr, cw = flats.(j) in
      Array.length cr = Array.length pr && Array.length cw = Array.length pw
    in
    if !i = 0 || not (same_shape !i) then begin
      push 0;
      push (Array.length r / 3);
      Array.iter push r;
      push (Array.length w / 3);
      Array.iter push w;
      incr i
    end
    else begin
      let pr, pw = flats.(!i - 1) in
      let dr = delta pr r and dw = delta pw w in
      let continues j =
        j < t && same_shape j
        &&
        let qr, qw = flats.(j - 1) and cr, cw = flats.(j) in
        delta qr cr = dr && delta qw cw = dw
      in
      let n = ref 1 in
      while continues (!i + !n) do
        incr n
      done;
      push 1;
      push !n;
      Array.iter push dr;
      Array.iter push dw;
      i := !i + !n
    end
  done;
  json_of_packed_ints_rle (Array.of_list (List.rev !out))

let footprint_tbs_of_json ~what j =
  let a = packed_ints_rle_of_json ~what j in
  let len = Array.length a in
  let pos = ref 0 in
  let take () =
    if !pos >= len then bad "%s: truncated footprint payload" what
    else begin
      let v = a.(!pos) in
      incr pos;
      v
    end
  in
  let take_arr n =
    if n < 0 || !pos + n > len then bad "%s: bad footprint payload length" what;
    let arr = Array.sub a !pos n in
    pos := !pos + n;
    arr
  in
  let intervals (arr : int array) =
    (* The preconditions [I.make] rejects are checked up front, so the hot
       loop (hundreds of thousands of intervals on a suite-sized store)
       carries no per-element exception handler. *)
    let ni = Array.length arr / 3 in
    let rec go k =
      if k = ni then []
      else begin
        let lo = arr.(3 * k) and hi = arr.((3 * k) + 1) and stride = arr.((3 * k) + 2) in
        if lo > hi || stride < 0 then bad "%s: bad interval" what;
        I.make ~lo ~hi ~stride :: go (k + 1)
      end
    in
    go 0
  in
  (* [t] is not bounded by the stream length — one delta group can cover
     arbitrarily many TBs with a handful of ints — so cap it the way the
     RLE decoders cap repeat counts: garbled data raises Bad, it never
     explodes an allocation. *)
  let t = take () in
  if t < 0 || t > 1 lsl 24 then bad "%s: bad thread-block count" what;
  let tbs = Array.make t { Footprint.freads = []; fwrites = [] } in
  let prev_r = ref [||] and prev_w = ref [||] in
  (* The interval lists of the running TB: a side whose deltas are all
     zero keeps its previous (immutable) list, so a kernel with a constant
     read set and per-TB writes allocates one read list total, not one per
     TB — the dominant shape in practice. *)
  let cur_fr = ref [] and cur_fw = ref [] in
  let i = ref 0 in
  while !i < t do
    (match take () with
    | 0 ->
      let nr = take () in
      let r = take_arr (3 * nr) in
      let nw = take () in
      let w = take_arr (3 * nw) in
      prev_r := r;
      prev_w := w;
      cur_fr := intervals r;
      cur_fw := intervals w;
      tbs.(!i) <- { Footprint.freads = !cur_fr; fwrites = !cur_fw };
      incr i
    | 1 ->
      let n = take () in
      if n < 1 || !i + n > t then bad "%s: bad delta-run length" what;
      let dr = take_arr (Array.length !prev_r) in
      let dw = take_arr (Array.length !prev_w) in
      let rzero = Array.for_all (fun d -> d = 0) dr in
      let wzero = Array.for_all (fun d -> d = 0) dw in
      if rzero && wzero && !i > 0 then begin
        (* A zero-delta run repeats the previous TB exactly; footprints are
           immutable, so every TB in the run shares one record. *)
        let prev_tb = tbs.(!i - 1) in
        for _ = 1 to n do
          tbs.(!i) <- prev_tb;
          incr i
        done
      end
      else begin
        (* The running TB is advanced in place: the interval lists built
           from it own their own boxes, so no sharing escapes. *)
        let r = if rzero then !prev_r else Array.copy !prev_r in
        let w = if wzero then !prev_w else Array.copy !prev_w in
        prev_r := r;
        prev_w := w;
        for _ = 1 to n do
          if not rzero then begin
            Array.iteri (fun k d -> r.(k) <- r.(k) + d) dr;
            cur_fr := intervals r
          end;
          if not wzero then begin
            Array.iteri (fun k d -> w.(k) <- w.(k) + d) dw;
            cur_fw := intervals w
          end;
          tbs.(!i) <- { Footprint.freads = !cur_fr; fwrites = !cur_fw };
          incr i
        done
      end
    | m -> bad "%s: unknown TB group marker %d" what m);
    ()
  done;
  if !pos <> len then bad "%s: trailing data in footprint payload" what;
  tbs

let json_of_footprints = function
  | Footprint.Conservative why -> Json.Obj [ ("k", Json.Str "cons"); ("why", Json.Str why) ]
  | Footprint.Per_tb tbs -> Json.Obj [ ("k", Json.Str "tb"); ("tbs", json_of_footprint_tbs tbs) ]

let footprints_of_json j =
  let what = "footprints" in
  match
    match str_field ~what "k" j with
    | "cons" -> Footprint.Conservative (str_field ~what "why" j)
    | "tb" -> Footprint.Per_tb (footprint_tbs_of_json ~what (field ~what "tbs" j))
    | k -> bad "%s: unknown kind %S" what k
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

let json_of_profile p =
  let r = Costmodel.repr_of_profile p in
  Json.Obj
    [
      ("i", json_of_packed_floats_rle r.Costmodel.prr_insts);
      ("m", json_of_packed_floats_rle r.Costmodel.prr_mem);
      ("w", Json.Num (float_of_int r.Costmodel.prr_warps));
      ("ww", json_of_float r.Costmodel.prr_warp_waves);
    ]

let profile_of_json j =
  let what = "profile" in
  match
    Costmodel.profile_of_repr
      {
        Costmodel.prr_insts = packed_floats_rle_of_json ~what:(what ^ ".i") (field ~what "i" j);
        prr_mem = packed_floats_rle_of_json ~what:(what ^ ".m") (field ~what "m" j);
        prr_warps = int_field ~what "w" j;
        prr_warp_waves = float_of_json ~what:(what ^ ".ww") (field ~what "ww" j);
      }
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

let json_of_rw (rw : Reorder.rw) =
  Json.Obj
    [
      ("r", json_of_packed_ints_rle (Array.of_list rw.Reorder.reads));
      ("w", json_of_packed_ints_rle (Array.of_list rw.Reorder.writes));
    ]

let rw_of_json j =
  let what = "rw" in
  match
    {
      Reorder.reads = Array.to_list (packed_ints_rle_of_json ~what (field ~what "r" j));
      writes = Array.to_list (packed_ints_rle_of_json ~what (field ~what "w" j));
    }
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

let relation_to_json = json_of_relation_packed

let relation_of_json' j =
  match relation_of_packed_json j with
  | v -> Ok v
  | exception Bad msg -> Error msg

(* --- the store ---------------------------------------------------------- *)

let part_hex t part =
  match List.find_opt (fun (s, _) -> s == part) t.part_digests with
  | Some (_, h) -> h
  | None ->
    let h = Digest.to_hex (Digest.string part) in
    (* The memo is an optimization keyed on physical equality; distinct
       boxes of equal texts just duplicate an entry.  Cache interns the
       fingerprint strings, so realistic growth is one entry per kernel —
       the reset is a backstop for pathological callers. *)
    if List.length t.part_digests >= 4096 then t.part_digests <- [];
    t.part_digests <- (part, h) :: t.part_digests;
    h

let part_hexes t key = List.map (part_hex t) key.parts

let entry_path t ~family ~hexes ~header =
  Filename.concat
    (Filename.concat t.dir family)
    (Digest.to_hex (Digest.string (String.concat "\x00" (header :: hexes))) ^ ".json")

let path t ~family ~key = entry_path t ~family ~hexes:(part_hexes t key) ~header:key.header
let intern_path t hex = Filename.concat (Filename.concat t.dir "fpx") (hex ^ ".txt")
let intern_paths t ~key = List.map (fun h -> intern_path t h) (part_hexes t key)

(* Raw [Unix] I/O, one open and no preliminary existence probe: per-entry
   syscalls sit on a disk-warm prepare's critical path (thousands of small
   files), channels would add two [lseek]s and a 64 KiB buffer allocation
   per open, and [ENOENT] classifies the miss for free. *)
let read_file file =
  match Unix.openfile file [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> `Absent
  | exception Unix.Unix_error _ -> `Unreadable
  | fd ->
    let result =
      match
        let size = (Unix.fstat fd).Unix.st_size in
        let buf = Bytes.create size in
        let rec fill off =
          if off >= size then size
          else
            match Unix.read fd buf off (size - off) with
            | 0 -> off
            | n -> fill (off + n)
        in
        let got = fill 0 in
        (* A short read (the file shrank under us) yields a truncated
           entry, which the caller's parse rejects as corrupt. *)
        if got = size then Bytes.unsafe_to_string buf else Bytes.sub_string buf 0 got
      with
      | data -> `Ok data
      | exception Unix.Unix_error _ -> `Unreadable
      | exception Invalid_argument _ -> `Unreadable
    in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    result

(* Atomic publication: unique temp file + rename.  Returns the byte count
   written, or None on any failure. *)
let write_file file data =
  match
    let parent = Filename.dirname file in
    if not (Sys.file_exists parent) then mkdir_p parent;
    let tmp, oc = Filename.open_temp_file ~temp_dir:parent ~mode:[ Open_binary ] "put" ".tmp" in
    (match Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc data) with
    | () -> ()
    | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e);
    Sys.rename tmp file
  with
  | () -> Some (String.length data)
  | exception Sys_error _ -> None

(* Check one interned fingerprint text against the lookup key's own copy.
   Success memoizes the caller's (physically interned) string, so the next
   lookup is a pointer comparison and the file is never read again. *)
let verify_part t hex part =
  match Hashtbl.find_opt t.verified hex with
  | Some txt -> if txt == part || String.equal txt part then `Ok else `Mismatch
  | None -> (
    match read_file (intern_path t hex) with
    | `Absent | `Unreadable -> `Missing
    | `Ok txt ->
      if String.equal txt part then begin
        Hashtbl.replace t.verified hex part;
        `Ok
      end
      else `Mismatch)

let rec verify_parts t hexes parts =
  match (hexes, parts) with
  | [], [] -> `Ok
  | hex :: hexes, part :: parts -> (
    match verify_part t hex part with `Ok -> verify_parts t hexes parts | bad -> bad)
  | _ -> `Mismatch

(* A miss of any flavor returns None; the caller recomputes and [put]s,
   overwriting whatever was there.  Never raises. *)
let find t ~family ~key ~decode =
  let hexes = part_hexes t key in
  let file = entry_path t ~family ~hexes ~header:key.header in
  let corrupt () =
    t.corrupt <- t.corrupt + 1;
    None
  in
  let stale () =
    t.stale <- t.stale + 1;
    None
  in
  match read_file file with
  | `Absent ->
    t.misses <- t.misses + 1;
    None
  | `Unreadable -> corrupt ()
  | `Ok data -> (
      match Json.of_string data with
      | Error _ -> corrupt ()
      | Ok j -> (
        let str name = match Json.member name j with Some (Json.Str s) -> Some s | _ -> None in
        let fps =
          match Json.member "fps" j with
          | Some (Json.Arr l) ->
            if List.for_all (function Json.Str _ -> true | _ -> false) l then
              Some (List.map (function Json.Str s -> s | _ -> assert false) l)
            else None
          | _ -> None
        in
        match (str "schema", Json.member "version" j, str "family", str "hdr", fps) with
        | Some s, Some v, Some f, Some h, Some fps
          when s = schema && Json.to_int v = Some schema_version && f = family ->
          if not (String.equal h key.header && fps = hexes) then stale ()
          else (
            match verify_parts t hexes key.parts with
            | `Missing -> corrupt ()
            | `Mismatch -> stale ()
            | `Ok -> (
              match Json.member "value" j with
              | None -> corrupt ()
              | Some value -> (
                match decode value with
                | Error _ -> corrupt ()
                | Ok v ->
                  t.hits <- t.hits + 1;
                  Some v)))
        | Some _, Some _, Some _, Some _, Some _ -> stale ()
        | _ -> corrupt ()))

let put t ~family ~key value =
  if not t.read_only then begin
    let hexes = part_hexes t key in
    (* Publish the interned fingerprint texts first, so a reader that sees
       the entry can always resolve them.  An unverified digest is written
       unconditionally: if the file was garbled, this is the clean
       rewrite. *)
    List.iter2
      (fun hex part ->
        if not (Hashtbl.mem t.verified hex) then begin
          match write_file (intern_path t hex) part with
          | Some n ->
            t.bytes_written <- t.bytes_written + n;
            Hashtbl.replace t.verified hex part
          | None -> t.write_errors <- t.write_errors + 1
        end)
      hexes key.parts;
    let data =
      Json.to_string
        (Json.Obj
           [
             ("schema", Json.Str schema);
             ("version", Json.Num (float_of_int schema_version));
             ("family", Json.Str family);
             ("hdr", Json.Str key.header);
             ("fps", Json.Arr (List.map (fun h -> Json.Str h) hexes));
             ("value", value);
           ])
    in
    match write_file (entry_path t ~family ~hexes ~header:key.header) data with
    | Some n -> t.bytes_written <- t.bytes_written + n
    | None -> t.write_errors <- t.write_errors + 1
  end

(* --- typed entries ------------------------------------------------------ *)

let find_footprints t ~key = find t ~family:"fp" ~key ~decode:footprints_of_json
let put_footprints t ~key v = put t ~family:"fp" ~key (json_of_footprints v)

let find_profile t ~key = find t ~family:"prof" ~key ~decode:profile_of_json
let put_profile t ~key v = put t ~family:"prof" ~key (json_of_profile v)

let find_rw t ~key = find t ~family:"rw" ~key ~decode:rw_of_json
let put_rw t ~key v = put t ~family:"rw" ~key (json_of_rw v)

let find_relation t ~key = find t ~family:"pair" ~key ~decode:relation_of_json'

let put_relation t ~key ~n_parents ~n_children rel =
  put t ~family:"pair" ~key (relation_to_json ~n_parents ~n_children rel)

(* --- counters ----------------------------------------------------------- *)

type counters = {
  disk_hits : int;
  disk_misses : int;
  disk_stale : int;
  disk_corrupt : int;
  disk_write_errors : int;
  disk_bytes_written : int;
}

let counters t =
  {
    disk_hits = t.hits;
    disk_misses = t.misses;
    disk_stale = t.stale;
    disk_corrupt = t.corrupt;
    disk_write_errors = t.write_errors;
    disk_bytes_written = t.bytes_written;
  }

let export t registry =
  let c = counters t in
  let putc name v = Metrics.add (Metrics.counter registry name) (float_of_int v) in
  putc "prep.cache.disk.hits" c.disk_hits;
  putc "prep.cache.disk.misses" c.disk_misses;
  putc "prep.cache.disk.stale" c.disk_stale;
  putc "prep.cache.disk.corrupt" c.disk_corrupt;
  putc "prep.cache.disk.write_errors" c.disk_write_errors;
  putc "prep.cache.disk.bytes_written" c.disk_bytes_written
