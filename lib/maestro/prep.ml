module Command = Bm_gpu.Command
module Config = Bm_gpu.Config
module Costmodel = Bm_gpu.Costmodel
module Footprint = Bm_analysis.Footprint
module Symeval = Bm_analysis.Symeval
module Bipartite = Bm_depgraph.Bipartite
module Pattern = Bm_depgraph.Pattern
module Encode = Bm_depgraph.Encode
module I = Bm_analysis.Sinterval
module Prof = Bm_metrics.Prof

type launch_info = {
  li_seq : int;
  li_prev : int option;  (* predecessor launch in the same stream *)
  li_spec : Command.launch_spec;
  li_result : Symeval.result;
  li_fp : Footprint.kernel_footprints;
  li_cost : Costmodel.t;
  li_tbs : int;
  li_relation : Bipartite.relation;
  li_pattern : Pattern.t;
  li_sizes : Encode.sizes;
  li_copy_deps : int list;
}

type t = {
  p_commands : Command.t array;
  p_launches : launch_info array;
  p_kernel_of_cmd : int array;
  p_d2h_wait : int option array;
}

(* Attribute a footprint interval to the buffer containing it: buffers are
   disjoint and padded, so the buffer with the greatest base <= lo wins. *)
let owner_buffer buffers (i : I.t) =
  List.fold_left
    (fun best (b : Command.buffer) ->
      if b.Command.base <= i.I.lo then
        match best with
        | Some (bb : Command.buffer) when bb.Command.base >= b.Command.base -> best
        | Some _ | None -> Some b
      else best)
    None buffers

let kernel_rw spec fp =
  let buffers = Command.buffers_of_args spec in
  match fp with
  | Footprint.Conservative _ ->
    let ids = List.map (fun b -> b.Command.buf_id) buffers in
    { Reorder.reads = ids; writes = ids }
  | Footprint.Per_tb fps ->
    let whole = Footprint.whole fps in
    let ids_of intervals =
      List.filter_map (fun i -> Option.map (fun b -> b.Command.buf_id) (owner_buffer buffers i)) intervals
      |> List.sort_uniq compare
    in
    { Reorder.reads = ids_of whole.Footprint.freads; writes = ids_of whole.Footprint.fwrites }

let command_rw cmd krw =
  match cmd with
  | Command.Malloc b -> { Reorder.reads = []; writes = [ b.Command.buf_id ] }
  | Command.Memcpy_h2d b -> { Reorder.reads = []; writes = [ b.Command.buf_id ] }
  | Command.Memcpy_d2h b -> { Reorder.reads = [ b.Command.buf_id ]; writes = [] }
  | Command.Kernel_launch spec -> krw spec
  | Command.Device_synchronize -> { Reorder.reads = []; writes = [] }

let prepare ?(reorder = true) ?prof ?cache (cfg : Config.t) (app : Command.app) =
  (* Two memo layers.  L1 (per call, keyed by kernel name — unique within an
     app): apps reuse kernels across many launches (GAUSSIAN alone has 510
     launches of 2 kernels).  L2 ([?cache], keyed by structural fingerprint,
     shared across calls on one domain): sweeps and re-runs skip the whole
     pipeline for kernels they have seen before, under any name. *)
  let kids : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let kid_of kernel =
    match cache with
    | None -> -1
    | Some c -> (
      let name = kernel.Bm_ptx.Types.kname in
      match Hashtbl.find_opt kids name with
      | Some kid -> kid
      | None ->
        let kid = Cache.kernel_id c kernel in
        Hashtbl.add kids name kid;
        kid)
  in
  let results : (string, Symeval.result) Hashtbl.t = Hashtbl.create 16 in
  let analyze kernel =
    let name = kernel.Bm_ptx.Types.kname in
    match Hashtbl.find_opt results name with
    | Some r -> r
    | None ->
      let compute () = Prof.with_span prof "analyze" (fun () -> Symeval.analyze kernel) in
      let r =
        match cache with
        | None -> compute ()
        | Some c ->
          let r = Cache.analysis c ~kid:(kid_of kernel) compute in
          (* The cached result may come from an alpha-twin under another
             name; everything but the embedded kernel is identical. *)
          if r.Symeval.kernel == kernel then r else { r with Symeval.kernel }
      in
      Hashtbl.add results name r;
      r
  in
  (* Footprints are cached per (kernel, launch configuration): iterative apps
     relaunch identical configurations hundreds of times. *)
  let fp_cache = Hashtbl.create 64 in
  let footprint spec =
    let fl = Command.footprint_launch spec in
    let key = (spec.Command.kernel.Bm_ptx.Types.kname, fl) in
    match Hashtbl.find_opt fp_cache key with
    | Some fp -> fp
    | None ->
      let compute () =
        Prof.with_span prof "footprint" (fun () -> Footprint.of_result (analyze spec.Command.kernel) fl)
      in
      let fp =
        match cache with
        | None -> compute ()
        | Some c -> Cache.footprint c ~kid:(kid_of spec.Command.kernel) ~fl compute
      in
      Hashtbl.add fp_cache key fp;
      fp
  in
  (* Cost profiles (per-TB instruction/memory counts) are the
     seq-independent half of the cost model; the jitter half is applied per
     launch below and never cached. *)
  let profile_memo = Hashtbl.create 64 in
  let profile_of (spec : Command.launch_spec) =
    let fl = Command.footprint_launch spec in
    let key = (spec.Command.kernel.Bm_ptx.Types.kname, fl) in
    match Hashtbl.find_opt profile_memo key with
    | Some p -> p
    | None ->
      let compute () =
        Prof.with_span prof "costmodel" (fun () ->
            Costmodel.profile (analyze spec.Command.kernel) fl)
      in
      let p =
        match cache with
        | None -> compute ()
        | Some c -> Cache.profile c ~kid:(kid_of spec.Command.kernel) ~fl compute
      in
      Hashtbl.add profile_memo key p;
      p
  in
  (* Read/write buffer sets per (kernel, launch configuration): computing
     one walks the whole per-TB footprint union, so the L1 memo matters for
     iterative apps (it is called twice per launch).  Buffer ids are only
     meaningful relative to this app's buffer layout, so the cross-call
     tiers key the layout too (Cache.rw). *)
  let rw_memo = Hashtbl.create 64 in
  let rw_of (spec : Command.launch_spec) fp =
    let key = (spec.Command.kernel.Bm_ptx.Types.kname, Command.footprint_launch spec) in
    match Hashtbl.find_opt rw_memo key with
    | Some rw -> rw
    | None ->
      let compute () = kernel_rw spec fp in
      let rw =
        match cache with
        | None -> compute ()
        | Some c ->
          let buffers =
            List.map
              (fun (b : Command.buffer) -> (b.Command.buf_id, b.Command.base, b.Command.bytes))
              (Command.buffers_of_args spec)
          in
          Cache.rw c
            ~kid:(kid_of spec.Command.kernel)
            ~fl:(Command.footprint_launch spec)
            ~buffers compute
      in
      Hashtbl.add rw_memo key rw;
      rw
  in
  (* Producer→consumer results, same two layers.  The pair is determined by
     both kernels and both launch configurations (grids drive the
     Fully_connected sizes), plus the degree cap. *)
  let pair_memo = Hashtbl.create 64 in
  let pair_of (pspec : Command.launch_spec) pfp (spec : Command.launch_spec) fp =
    let pfl = Command.footprint_launch pspec in
    let cfl = Command.footprint_launch spec in
    let key =
      ( pspec.Command.kernel.Bm_ptx.Types.kname,
        pfl,
        spec.Command.kernel.Bm_ptx.Types.kname,
        cfl )
    in
    match Hashtbl.find_opt pair_memo key with
    | Some pr -> pr
    | None ->
      let compute () =
        let relation =
          Prof.with_span prof "relate" (fun () ->
              Bipartite.relate ~max_degree:cfg.Config.max_parent_degree pfp fp)
        in
        let pattern = Pattern.classify relation in
        let sizes =
          Prof.with_span prof "encode" (fun () ->
              match relation with
              | Bipartite.Fully_connected ->
                Encode.measure_full
                  ~n_parents:(Bm_ptx.Types.dim3_count pspec.Command.grid)
                  ~n_children:(Bm_ptx.Types.dim3_count spec.Command.grid)
              | Bipartite.Independent | Bipartite.Graph _ -> Encode.measure relation)
        in
        { Cache.pr_relation = relation; pr_pattern = pattern; pr_sizes = sizes }
      in
      let pr =
        match cache with
        | None -> compute ()
        | Some c ->
          Cache.pair c
            ~pkid:(kid_of pspec.Command.kernel)
            ~pfl
            ~ckid:(kid_of spec.Command.kernel)
            ~cfl ~max_degree:cfg.Config.max_parent_degree compute
      in
      Hashtbl.add pair_memo key pr;
      pr
  in
  (* Reorder (or keep) the command stream. *)
  let original = Array.of_list app.Command.commands in
  let rws = Array.map (fun c -> command_rw c (fun spec -> rw_of spec (footprint spec))) original in
  let final =
    if reorder then
      Prof.with_span prof "reorder" (fun () ->
          Array.of_list (Reorder.reorder (Array.map2 (fun c rw -> (c, rw)) original rws)))
    else original
  in
  let n = Array.length final in
  (* Walk the final order: build launch infos, H2D gating, D2H gating. *)
  let launches = ref [] in
  let kernel_of_cmd = Array.make n (-1) in
  let d2h_wait = Array.make n None in
  let last_writer : (int, int) Hashtbl.t = Hashtbl.create 16 in  (* buf id -> kernel seq *)
  let pending_h2d : (int, int) Hashtbl.t = Hashtbl.create 16 in  (* buf id -> cmd idx *)
  let seq = ref 0 in
  (* Per-stream predecessor tracking: dependencies are only enforced (and
     in-order completion only required) within a stream. *)
  let stream_prev : (int, int * Footprint.kernel_footprints * Command.launch_spec) Hashtbl.t =
    Hashtbl.create 4
  in
  Array.iteri
    (fun ci cmd ->
      match cmd with
      | Command.Malloc _ | Command.Device_synchronize -> ()
      | Command.Memcpy_h2d b -> Hashtbl.replace pending_h2d b.Command.buf_id ci
      | Command.Memcpy_d2h b ->
        d2h_wait.(ci) <- Hashtbl.find_opt last_writer b.Command.buf_id
      | Command.Kernel_launch spec ->
        let result = analyze spec.Command.kernel in
        let fp = footprint spec in
        let rw = rw_of spec fp in
        let prev = Hashtbl.find_opt stream_prev spec.Command.stream in
        let relation, pattern, sizes =
          match prev with
          | None ->
            (Bipartite.Independent, Pattern.classify Bipartite.Independent,
             Encode.measure Bipartite.Independent)
          | Some (_, pfp, pspec) ->
            let pr = pair_of pspec pfp spec fp in
            (pr.Cache.pr_relation, pr.Cache.pr_pattern, pr.Cache.pr_sizes)
        in
        let cost =
          (* The jitter application is never cached: it is keyed on the
             launch sequence number, which differs between structurally
             equal launches.  Only the profile underneath is memoized. *)
          Prof.with_span prof "costmodel" (fun () ->
              Costmodel.of_profile cfg ~kernel_seq:!seq (profile_of spec))
        in
        let copy_deps =
          List.filter_map (fun buf_id -> Hashtbl.find_opt pending_h2d buf_id) rw.Reorder.reads
        in
        List.iter (fun buf_id -> Hashtbl.replace last_writer buf_id !seq) rw.Reorder.writes;
        kernel_of_cmd.(ci) <- !seq;
        launches :=
          {
            li_seq = !seq;
            li_prev = (match prev with Some (p, _, _) -> Some p | None -> None);
            li_spec = spec;
            li_result = result;
            li_fp = fp;
            li_cost = cost;
            li_tbs = Bm_ptx.Types.dim3_count spec.Command.grid;
            li_relation = relation;
            li_pattern = pattern;
            li_sizes = sizes;
            li_copy_deps = copy_deps;
          }
          :: !launches;
        Hashtbl.replace stream_prev spec.Command.stream (!seq, fp, spec);
        incr seq)
    final;
  {
    p_commands = final;
    p_launches = Array.of_list (List.rev !launches);
    p_kernel_of_cmd = kernel_of_cmd;
    p_d2h_wait = d2h_wait;
  }

let with_relation t ~seq relation =
  let launches =
    Array.map
      (fun li ->
        if li.li_seq <> seq then li
        else
          let pattern = Pattern.classify relation in
          let sizes =
            match relation with
            | Bipartite.Fully_connected ->
              let n_parents =
                match li.li_prev with Some p -> t.p_launches.(p).li_tbs | None -> 0
              in
              Encode.measure_full ~n_parents ~n_children:li.li_tbs
            | Bipartite.Independent | Bipartite.Graph _ -> Encode.measure relation
          in
          { li with li_relation = relation; li_pattern = pattern; li_sizes = sizes })
      t.p_launches
  in
  { t with p_launches = launches }
