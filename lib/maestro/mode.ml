type t =
  | Baseline
  | Ideal
  | Prelaunch_only
  | Producer_priority
  | Consumer_priority of int

type policy = Oldest_first | Newest_first

let window = function
  | Baseline | Ideal -> 1
  | Prelaunch_only | Producer_priority -> 2
  | Consumer_priority w -> max 2 w

let fine_grain = function
  | Baseline | Ideal | Prelaunch_only -> false
  | Producer_priority | Consumer_priority _ -> true

let reorders = function
  | Baseline | Ideal -> false
  | Prelaunch_only | Producer_priority | Consumer_priority _ -> true

let serial_commands = function
  | Baseline | Ideal -> true
  | Prelaunch_only | Producer_priority | Consumer_priority _ -> false

let policy = function
  | Baseline | Ideal | Prelaunch_only | Producer_priority -> Oldest_first
  | Consumer_priority _ -> Newest_first

let launch_overhead (cfg : Bm_gpu.Config.t) = function
  | Ideal -> 0.0
  | Baseline | Prelaunch_only | Producer_priority | Consumer_priority _ ->
    cfg.Bm_gpu.Config.kernel_launch_us

let name = function
  | Baseline -> "baseline"
  | Ideal -> "ideal"
  | Prelaunch_only -> "kernel-pre-launching"
  | Producer_priority -> "producer-priority"
  | Consumer_priority w -> Printf.sprintf "consumer-priority-%dk" w

(* Stable short names for command-line parsing, shared by bmctl and the
   bench harness so the two never drift. *)
let known =
  [
    ("baseline", Baseline);
    ("ideal", Ideal);
    ("prelaunch", Prelaunch_only);
    ("producer", Producer_priority);
    ("consumer2", Consumer_priority 2);
    ("consumer3", Consumer_priority 3);
    ("consumer4", Consumer_priority 4);
  ]

let of_string s = List.assoc_opt s known

let all_fig9 =
  [
    Baseline;
    Prelaunch_only;
    Producer_priority;
    Consumer_priority 2;
    Consumer_priority 3;
    Consumer_priority 4;
    Ideal;
  ]

let pp ppf t = Format.pp_print_string ppf (name t)
