type t =
  | Baseline
  | Ideal
  | Prelaunch_only
  | Producer_priority
  | Consumer_priority of int
  | Deadline_edf of int

type policy = Oldest_first | Newest_first | Edf

let window = function
  | Baseline | Ideal -> 1
  | Prelaunch_only | Producer_priority -> 2
  | Consumer_priority w | Deadline_edf w -> max 2 w

let fine_grain = function
  | Baseline | Ideal | Prelaunch_only -> false
  | Producer_priority | Consumer_priority _ | Deadline_edf _ -> true

let reorders = function
  | Baseline | Ideal -> false
  | Prelaunch_only | Producer_priority | Consumer_priority _ | Deadline_edf _ -> true

let serial_commands = function
  | Baseline | Ideal -> true
  | Prelaunch_only | Producer_priority | Consumer_priority _ | Deadline_edf _ -> false

let policy = function
  | Baseline | Ideal | Prelaunch_only | Producer_priority -> Oldest_first
  | Consumer_priority _ -> Newest_first
  | Deadline_edf _ -> Edf

let launch_overhead (cfg : Bm_gpu.Config.t) = function
  | Ideal -> 0.0
  | Baseline | Prelaunch_only | Producer_priority | Consumer_priority _ | Deadline_edf _ ->
    cfg.Bm_gpu.Config.kernel_launch_us

let name = function
  | Baseline -> "baseline"
  | Ideal -> "ideal"
  | Prelaunch_only -> "kernel-pre-launching"
  | Producer_priority -> "producer-priority"
  | Consumer_priority w -> Printf.sprintf "consumer-priority-%dk" w
  | Deadline_edf w -> Printf.sprintf "deadline-edf-%dk" w

(* Stable short names for command-line parsing, shared by bmctl and the
   bench harness so the two never drift. *)
let known =
  [
    ("baseline", Baseline);
    ("ideal", Ideal);
    ("prelaunch", Prelaunch_only);
    ("producer", Producer_priority);
    ("consumer2", Consumer_priority 2);
    ("consumer3", Consumer_priority 3);
    ("consumer4", Consumer_priority 4);
    ("edf2", Deadline_edf 2);
    ("edf3", Deadline_edf 3);
    ("edf4", Deadline_edf 4);
  ]

let of_string s =
  match List.assoc_opt s known with
  | Some m -> Some m
  | None ->
    (* Also accept the long display names, so any mode string a tool ever
       printed parses back ([name] and the short table round-trip both
       ways). *)
    List.find_map (fun (_, m) -> if name m = s then Some m else None) known

let all_fig9 =
  [
    Baseline;
    Prelaunch_only;
    Producer_priority;
    Consumer_priority 2;
    Consumer_priority 3;
    Consumer_priority 4;
    Ideal;
  ]

let pp ppf t = Format.pp_print_string ppf (name t)
