module Command = Bm_gpu.Command

type rw = {
  reads : int list;
  writes : int list;
}

let inter a b = List.exists (fun x -> List.mem x b) a

let conflicts a b =
  inter a.writes b.reads || inter a.reads b.writes || inter a.writes b.writes

(* One left-to-right scan with per-buffer last-writer / readers-since-write
   indices instead of the quadratic all-pairs [conflicts] sweep (GAUSSIAN
   alone is ~1.5k commands, >1M pair checks).  The edge set is smaller than
   the all-pairs one — a WAW chain w1→w2→w3 omits w1→w3 — but has the same
   transitive closure, and scheduling readiness ("every predecessor
   emitted") only depends on the closure, so [reorder] output is
   unchanged. *)
let dependencies rws =
  let n = Array.length rws in
  let last_writer : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let readers : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  let preds = Array.make n [] in
  for j = 0 to n - 1 do
    let add i = preds.(j) <- i :: preds.(j) in
    let writer b = match Hashtbl.find_opt last_writer b with Some i -> add i | None -> () in
    List.iter writer rws.(j).reads;
    List.iter
      (fun b ->
        writer b;
        match Hashtbl.find_opt readers b with Some l -> List.iter add !l | None -> ())
      rws.(j).writes;
    List.iter
      (fun b ->
        Hashtbl.replace last_writer b j;
        Hashtbl.replace readers b (ref []))
      rws.(j).writes;
    List.iter
      (fun b ->
        match Hashtbl.find_opt readers b with
        | Some l -> l := j :: !l
        | None -> Hashtbl.replace readers b (ref [ j ]))
      rws.(j).reads
  done;
  let edges = ref [] in
  for j = n - 1 downto 0 do
    List.iter (fun i -> edges := (i, j) :: !edges) (List.sort_uniq compare preds.(j))
  done;
  !edges

let reorder commands =
  let keep =
    Array.to_list commands
    |> List.filter (fun (c, _) -> match c with Command.Device_synchronize -> false | _ -> true)
    |> Array.of_list
  in
  let n = Array.length keep in
  let rws = Array.map snd keep in
  let indeg = Array.make n 0 in
  let succs = Array.make n [] in
  List.iter
    (fun (i, j) ->
      indeg.(j) <- indeg.(j) + 1;
      succs.(i) <- j :: succs.(i))
    (dependencies rws);
  let emitted = Array.make n false in
  let out = ref [] in
  let emit i =
    emitted.(i) <- true;
    out := fst keep.(i) :: !out;
    List.iter (fun j -> indeg.(j) <- indeg.(j) - 1) succs.(i)
  in
  let is_kernel i = match fst keep.(i) with Command.Kernel_launch _ -> true | _ -> false in
  let remaining = ref n in
  while !remaining > 0 do
    (* Drain every ready non-kernel command. *)
    let progressed = ref true in
    while !progressed do
      progressed := false;
      for i = 0 to n - 1 do
        if (not emitted.(i)) && indeg.(i) = 0 && not (is_kernel i) then begin
          emit i;
          decr remaining;
          progressed := true
        end
      done
    done;
    (* Then the first ready kernel, preserving kernel order. *)
    let k = ref (-1) in
    for i = n - 1 downto 0 do
      if (not emitted.(i)) && indeg.(i) = 0 && is_kernel i then k := i
    done;
    if !k >= 0 then begin
      emit !k;
      decr remaining
    end
    else if !remaining > 0 then begin
      (* No ready command at all would mean a dependency cycle, which is
         impossible for edges i < j. *)
      assert (!remaining = 0)
    end
  done;
  List.rev !out
