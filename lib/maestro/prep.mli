(** Kernel-launch-time preparation: the software half of BlockMaestro.

    For an application's command stream this performs everything the paper
    does during JIT compilation at launch time: PTX analysis (Algorithm 1 via
    {!Bm_analysis.Symeval}), per-TB value-range footprints, command-queue
    reordering, bipartite dependency graphs between consecutive kernels,
    pattern classification, encoded-storage sizes, and the TB cost model the
    simulator consumes. *)

type launch_info = {
  li_seq : int;                                 (** index among launches, final order *)
  li_prev : int option;                         (** predecessor launch in the same stream *)
  li_spec : Bm_gpu.Command.launch_spec;
  li_result : Bm_analysis.Symeval.result;
  li_fp : Bm_analysis.Footprint.kernel_footprints;
  li_cost : Bm_gpu.Costmodel.t;
  li_tbs : int;
  li_relation : Bm_depgraph.Bipartite.relation;
      (** with the previous launch in the same stream; [Independent] for a
          stream's first launch *)
  li_pattern : Bm_depgraph.Pattern.t;
  li_sizes : Bm_depgraph.Encode.sizes;          (** storage of this pair's graph *)
  li_copy_deps : int list;                      (** indices of H2D commands this kernel must wait for *)
}

type t = {
  p_commands : Bm_gpu.Command.t array;  (** final (possibly reordered) order *)
  p_launches : launch_info array;
  p_kernel_of_cmd : int array;          (** command index -> launch seq, or -1 *)
  p_d2h_wait : int option array;        (** per command: kernel seq whose completion gates this D2H *)
}

val kernel_rw : Bm_gpu.Command.launch_spec -> Bm_analysis.Footprint.kernel_footprints -> Reorder.rw
(** Buffer-granularity read/write sets of a launch, for reordering. *)

val command_rw : Bm_gpu.Command.t -> (Bm_gpu.Command.launch_spec -> Reorder.rw) -> Reorder.rw

val prepare :
  ?reorder:bool ->
  ?prof:Bm_metrics.Prof.t ->
  ?cache:Cache.t ->
  Bm_gpu.Config.t ->
  Bm_gpu.Command.app ->
  t
(** Analyze and (when [reorder], default true) reorder the app.

    [prof] records wall-clock spans for the pipeline stages — [analyze]
    (PTX symbolic evaluation), [footprint], [reorder], [relate] (bipartite
    graph construction), [encode] and [costmodel] — nested under whatever
    span the caller has open.  Cached stages (a kernel analyzed once, a
    footprint reused across relaunches) only charge their first
    computation.

    [cache] memoizes analysis, footprint and pair results across [prepare]
    calls by structural kernel fingerprint ({!Cache}); results are
    cycle-identical with and without it.  The cache is single-domain
    state — pass one cache per worker domain, never a shared one. *)

val with_relation : t -> seq:int -> Bm_depgraph.Bipartite.relation -> t
(** Replace the dependency relation of launch [seq] (with its predecessor).
    Used by the interconnectivity microbenchmark (Fig. 12), which
    artificially varies the dependency degree of an otherwise unchanged
    application. *)
