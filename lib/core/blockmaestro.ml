(** BlockMaestro: programmer-transparent task-based execution for GPUs.

    Umbrella module re-exporting the whole public API.  Typical use:

    {[
      open Blockmaestro
      let app = Suite.by_name "GAUSSIAN" ()
      let results = Runner.simulate_all app
    ]}

    Layer map (bottom-up):
    - {!Rng}, {!Heap}, {!Eheap}, {!Lru}: deterministic simulation substrate
    - {!Ptx}, {!Printer}, {!Parser}, {!Builder}, {!Cfg}: the PTX-like IR
    - {!Sinterval}, {!Sym}, {!Slice}, {!Symeval}, {!Footprint},
      {!Fingerprint}: kernel-launch-time static analysis (Algorithm 1)
    - {!Bipartite}, {!Pattern}, {!Encode}: TB-level dependency graphs
    - {!Config}, {!Command}, {!Alloc}, {!Costmodel}, {!Stats}: GPU model
    - {!Mode}, {!Reorder}, {!Jsonc}, {!Store}, {!Cache}, {!Prep},
      {!Hardware}, {!Sim}, {!Graph}, {!Replay}, {!Multi}, {!Runner}:
      BlockMaestro proper (simulator, persistent analysis store,
      ahead-of-time capture/replay, cross-app co-running)
    - {!Templates}, {!Dsl}, {!Suite}, {!Microbench}, {!Wavefront},
      {!Genapp}: workloads
    - {!Cdp}, {!Wireframe}: comparison models
    - {!Refsched}, {!Refmulti}, {!Diff}, {!Soundness}, {!Shrink}, {!Fuzz}:
      differential oracle and shrinking fuzzer
    - {!Metrics}, {!Prof}, {!Json}, {!Benchfile}: performance counters,
      span profiling and machine-readable bench trajectories
    - {!Parallel}, {!Benchrun}: domain-pool fan-out for experiment sweeps
      and the parallel bench-trajectory collector
    - {!Report}, {!Timeline}, {!Trace}: result formatting and event traces
    - {!Attrib}, {!Critpath}, {!Explain}: cycle attribution, critical-path
      extraction and what-if sensitivity (the "explain" layer) *)

module Rng = Bm_engine.Rng
module Heap = Bm_engine.Heap
module Eheap = Bm_engine.Eheap
module Lru = Bm_engine.Lru

module Ptx = Bm_ptx.Types
module Printer = Bm_ptx.Printer
module Parser = Bm_ptx.Parser
module Builder = Bm_ptx.Builder
module Cfg = Bm_ptx.Cfg
module Interp = Bm_ptx.Interp

module Sinterval = Bm_analysis.Sinterval
module Sym = Bm_analysis.Sym
module Slice = Bm_analysis.Slice
module Symeval = Bm_analysis.Symeval
module Footprint = Bm_analysis.Footprint
module Dynamic = Bm_analysis.Dynamic
module Fingerprint = Bm_analysis.Fingerprint

module Bipartite = Bm_depgraph.Bipartite
module Pattern = Bm_depgraph.Pattern
module Encode = Bm_depgraph.Encode

module Config = Bm_gpu.Config
module Command = Bm_gpu.Command
module Alloc = Bm_gpu.Alloc
module Costmodel = Bm_gpu.Costmodel
module Stats = Bm_gpu.Stats

module Mode = Bm_maestro.Mode
module Reorder = Bm_maestro.Reorder
module Jsonc = Bm_maestro.Jsonc
module Store = Bm_maestro.Store
module Cache = Bm_maestro.Cache
module Prep = Bm_maestro.Prep
module Hardware = Bm_maestro.Hardware
module Sim = Bm_maestro.Sim
module Graph = Bm_maestro.Graph
module Replay = Bm_maestro.Replay
module Multi = Bm_maestro.Multi
module Deadline = Bm_maestro.Deadline
module Runner = Bm_maestro.Runner

module Templates = Bm_workloads.Templates
module Dsl = Bm_workloads.Dsl
module Suite = Bm_workloads.Suite
module Microbench = Bm_workloads.Microbench
module Wavefront = Bm_workloads.Wavefront
module Genapp = Bm_workloads.Genapp

module Refsched = Bm_oracle.Refsched
module Refmulti = Bm_oracle.Refmulti
module Diff = Bm_oracle.Diff
module Soundness = Bm_oracle.Soundness
module Shrink = Bm_oracle.Shrink
module Fuzz = Bm_oracle.Fuzz
module Rta = Bm_oracle.Rta

module Cdp = Bm_baselines.Cdp
module Wireframe = Bm_baselines.Wireframe

module Report = Bm_report.Report
module Timeline = Bm_report.Timeline
module Trace = Bm_report.Trace
module Attrib = Bm_report.Attrib
module Critpath = Bm_report.Critpath
module Explain = Bm_maestro.Explain

module Metrics = Bm_metrics.Metrics
module Prof = Bm_metrics.Prof
module Json = Bm_metrics.Json
module Benchfile = Bm_metrics.Benchfile

module Parallel = Bm_parallel
module Benchrun = Bm_harness.Benchrun
