(* Structured simulation events.  The simulator emits these through an
   optional sink; the type lives here (not in bm_report) so both the
   simulator and the trace collector can see it without a dependency
   cycle. *)
type event =
  | Kernel_enqueue of { seq : int; stream : int; tbs : int }
  | Kernel_launched of { seq : int; stream : int }
  | Kernel_drained of { seq : int; stream : int }
  | Kernel_completed of { seq : int; stream : int }
  | Tb_dispatch of { seq : int; tb : int }
  | Tb_finish of { seq : int; tb : int }
  | Dep_satisfied of { seq : int; tb : int }
  | Copy_start of { cmd : int; bytes : int; d2h : bool; blocking : bool }
  | Copy_finish of { cmd : int; bytes : int; d2h : bool; blocking : bool }
  | Dlb_spill of { seq : int; needed : int; capacity : int }
  | Pcb_spill of { seq : int; needed : int; capacity : int }

type sink = float -> event -> unit

let event_name = function
  | Kernel_enqueue _ -> "kernel_enqueue"
  | Kernel_launched _ -> "kernel_launched"
  | Kernel_drained _ -> "kernel_drained"
  | Kernel_completed _ -> "kernel_completed"
  | Tb_dispatch _ -> "tb_dispatch"
  | Tb_finish _ -> "tb_finish"
  | Dep_satisfied _ -> "dep_satisfied"
  | Copy_start _ -> "copy_start"
  | Copy_finish _ -> "copy_finish"
  | Dlb_spill _ -> "dlb_spill"
  | Pcb_spill _ -> "pcb_spill"

type tb_record = {
  r_kernel : int;
  r_tb : int;
  r_dep_ready : float;
  r_start : float;
  r_finish : float;
}

type t = {
  total_us : float;
  busy_us : float;
  records : tb_record array;
  avg_concurrency : float;
  base_mem_requests : float;
  dep_mem_requests : float;
}

let stall_fractions t =
  Array.to_list t.records
  |> List.filter_map (fun r ->
         let dur = r.r_finish -. r.r_start in
         if dur <= 0.0 then None else Some (max 0.0 (r.r_start -. r.r_dep_ready) /. dur))
  |> Array.of_list

let speedup ~baseline t = baseline.total_us /. t.total_us

let mem_overhead_pct t =
  if t.base_mem_requests <= 0.0 then 0.0
  else 100.0 *. t.dep_mem_requests /. t.base_mem_requests

let busy_concurrency t =
  if t.busy_us <= 0.0 then 0.0 else t.avg_concurrency *. t.total_us /. t.busy_us
