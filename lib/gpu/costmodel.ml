module Footprint = Bm_analysis.Footprint
module Rng = Bm_engine.Rng

type t = {
  tb_us : float array;
  tb_mem_requests : float array;
  avg_tb_us : float;
}

(* The launch-sequence-independent half of the model: per-TB dynamic
   instruction and memory-instruction counts (range-analyzed loop trips
   included) plus the block's warp geometry.  Everything here is a pure
   function of (analysis result, launch configuration), so it is what the
   launch-time cache memoizes; the jitter half below is keyed on the kernel
   sequence number and is recomputed per launch. *)
type profile = {
  pr_insts : float array;  (* per-TB dynamic instructions *)
  pr_mem : float array;    (* per-TB dynamic memory instructions *)
  pr_warps : int;
  pr_warp_waves : float;
}

let profile result (launch : Footprint.launch) =
  let n = Footprint.tb_count launch in
  let threads = Bm_ptx.Types.dim3_count launch.Footprint.block in
  let warps = max 1 ((threads + 31) / 32) in
  (* Four warp schedulers per SM: warps beyond four lanes serialize. *)
  let warp_waves = float_of_int (max 1 ((warps + 3) / 4)) in
  let insts = Array.make n 0.0 in
  let mem = Array.make n 0.0 in
  for tb = 0 to n - 1 do
    insts.(tb) <- Footprint.per_tb_insts result launch ~tb;
    mem.(tb) <- Footprint.per_tb_mem_insts result launch ~tb
  done;
  { pr_insts = insts; pr_mem = mem; pr_warps = warps; pr_warp_waves = warp_waves }

(* Transparent view for the persistent analysis store: the mli keeps
   [profile] abstract so only the cache layers rebuild one, but the store
   must serialize it bit-exactly. *)
type profile_repr = {
  prr_insts : float array;
  prr_mem : float array;
  prr_warps : int;
  prr_warp_waves : float;
}

let repr_of_profile p =
  {
    prr_insts = Array.copy p.pr_insts;
    prr_mem = Array.copy p.pr_mem;
    prr_warps = p.pr_warps;
    prr_warp_waves = p.pr_warp_waves;
  }

let profile_of_repr r =
  {
    pr_insts = Array.copy r.prr_insts;
    pr_mem = Array.copy r.prr_mem;
    pr_warps = r.prr_warps;
    pr_warp_waves = r.prr_warp_waves;
  }

let of_profile (cfg : Config.t) ~kernel_seq p =
  let n = Array.length p.pr_insts in
  let tb_us = Array.make n 0.0 in
  let tb_mem = Array.make n 0.0 in
  let sum = ref 0.0 in
  for tb = 0 to n - 1 do
    let insts = p.pr_insts.(tb) in
    let mem = p.pr_mem.(tb) in
    let cycles = (insts *. cfg.Config.cpi) +. (mem *. cfg.Config.mem_extra_cycles) in
    let base_us = Config.cycles_to_us cfg (cycles *. p.pr_warp_waves) in
    let j = Rng.jitter (cfg.Config.seed + kernel_seq) tb in
    (* Heavy-tailed straggler factor: most TBs are near nominal, a few run
       much longer (data-dependent work).  The tail weight scales with the
       configured jitter so the default stays mild. *)
    let tail = 1.0 +. (6.0 *. cfg.Config.jitter_frac *. (j ** 12.0)) in
    let jittered =
      base_us *. (1.0 +. (cfg.Config.jitter_frac *. ((2.0 *. j) -. 1.0))) *. tail
    in
    tb_us.(tb) <- jittered;
    (* One coalesced request per warp per executed memory instruction. *)
    tb_mem.(tb) <- mem *. float_of_int p.pr_warps;
    sum := !sum +. jittered
  done;
  { tb_us; tb_mem_requests = tb_mem; avg_tb_us = (if n = 0 then 0.0 else !sum /. float_of_int n) }

let of_launch cfg ~kernel_seq result launch = of_profile cfg ~kernel_seq (profile result launch)

let total_mem_requests t = Array.fold_left ( +. ) 0.0 t.tb_mem_requests
