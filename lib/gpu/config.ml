type t = {
  num_sms : int;
  max_tbs_per_sm : int;
  clock_ghz : float;
  kernel_launch_us : float;
  launch_api_us : float;
  cdp_launch_us : float;
  malloc_us : float;
  memcpy_latency_us : float;
  memcpy_gb_per_s : float;
  cpi : float;
  mem_extra_cycles : float;
  jitter_frac : float;
  max_parent_degree : int;
  dlb_entries : int;
  dlb_children_per_entry : int;
  pcb_entries : int;
  seed : int;
}

let titan_x_pascal =
  {
    num_sms = 28;
    max_tbs_per_sm = 32;
    clock_ghz = 1.417;
    kernel_launch_us = 5.0;
    launch_api_us = 2.0;
    cdp_launch_us = 3.0;
    (* Host-side memory operations are cheap relative to kernels: the
       paper's GPGPU-Sim methodology times the kernel region, so copies
       must not dominate the simulated totals. *)
    malloc_us = 1.0;
    memcpy_latency_us = 2.0;
    memcpy_gb_per_s = 200.0;
    cpi = 4.0;
    mem_extra_cycles = 24.0;
    jitter_frac = 0.08;
    max_parent_degree = 64;
    dlb_entries = 28 * 32;
    dlb_children_per_entry = 4;
    pcb_entries = 28 * 32;
    seed = 0xB10C;
  }

let total_tb_slots t = t.num_sms * t.max_tbs_per_sm

(* A machine slice with [sms] SMs.  The dependency tables are banked
   per-SM in the paper's design (28 * 32 entries on the 28-SM machine), so
   a spatial partition takes its proportional share of DLB/PCB capacity
   along with its SMs.  Everything else — clocks, launch overheads, copy
   bandwidth, jitter seed — describes per-unit behaviour and is unchanged,
   which is what makes a partition's solo run on [with_sms cfg n]
   bit-comparable to its co-run inside the full machine. *)
let with_sms t sms =
  if sms < 1 then invalid_arg "Config.with_sms: need at least one SM";
  {
    t with
    num_sms = sms;
    dlb_entries = t.dlb_entries * sms / t.num_sms;
    pcb_entries = t.pcb_entries * sms / t.num_sms;
  }

let to_assoc t =
  [
    ("num_sms", string_of_int t.num_sms);
    ("max_tbs_per_sm", string_of_int t.max_tbs_per_sm);
    ("clock_ghz", Printf.sprintf "%.3f" t.clock_ghz);
    ("kernel_launch_us", Printf.sprintf "%.1f" t.kernel_launch_us);
    ("malloc_us", Printf.sprintf "%.1f" t.malloc_us);
    ("memcpy_latency_us", Printf.sprintf "%.1f" t.memcpy_latency_us);
    ("memcpy_gb_per_s", Printf.sprintf "%.1f" t.memcpy_gb_per_s);
    ("jitter_frac", Printf.sprintf "%.2f" t.jitter_frac);
    ("max_parent_degree", string_of_int t.max_parent_degree);
    ("dlb_entries", string_of_int t.dlb_entries);
    ("dlb_children_per_entry", string_of_int t.dlb_children_per_entry);
    ("pcb_entries", string_of_int t.pcb_entries);
    ("seed", string_of_int t.seed);
  ]

let cycles_to_us t cycles = cycles /. (t.clock_ghz *. 1000.0)
