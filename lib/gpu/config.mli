(** GPU machine configuration.

    Defaults follow the paper's evaluation setup (§IV-A): a Titan X
    Pascal-like device simulated on GPGPU-Sim — 28 SMs, up to 32 thread
    blocks resident per SM, a 5 µs host-side kernel launch overhead
    (from Hetherington et al. [27]), and a 3 µs device-side (CDP) launch. *)

type t = {
  num_sms : int;
  max_tbs_per_sm : int;
  clock_ghz : float;
  kernel_launch_us : float;   (** host-side kernel launch overhead *)
  launch_api_us : float;      (** the API-call share of the launch overhead *)
  cdp_launch_us : float;      (** device-side kernel launch (Fig. 14's CDP model) *)
  malloc_us : float;
  memcpy_latency_us : float;
  memcpy_gb_per_s : float;
  cpi : float;                (** average cycles per dynamic instruction *)
  mem_extra_cycles : float;   (** additional amortized cycles per memory instruction *)
  jitter_frac : float;        (** per-TB execution-time jitter amplitude *)
  max_parent_degree : int;    (** parent-counter width cap (6 bits -> 64) *)
  dlb_entries : int;          (** dependency list buffer entries *)
  dlb_children_per_entry : int;
  pcb_entries : int;          (** parent counter buffer entries *)
  seed : int;
}

val titan_x_pascal : t

val total_tb_slots : t -> int
(** [num_sms * max_tbs_per_sm] — concurrent TB capacity of the device. *)

val with_sms : t -> int -> t
(** [with_sms t n] is the machine restricted to [n] SMs: TB slots and the
    per-SM-banked DLB/PCB capacities scale proportionally, every per-unit
    parameter (clocks, overheads, copy bandwidth, jitter seed) is kept.
    Used to describe one tenant's slice under spatial partitioning — a
    solo run on [with_sms t n] is the isolation baseline for a co-run
    that grants that tenant [n] SMs.  Raises [Invalid_argument] when
    [n < 1]. *)

val cycles_to_us : t -> float -> float

val to_assoc : t -> (string * string) list
(** The machine parameters as printable key/value pairs, embedded as
    metadata in exported traces so a trace file is self-describing. *)
