(** Thread-block execution-time and memory-traffic cost model.

    The simulator is TB-granular: it needs, for every thread block of a
    launch, how long the block occupies an SM slot and how many memory
    requests it issues.  Both are derived from the kernel's dynamic
    instruction mix (straight-line instructions plus range-analyzed loop
    trip counts) — the same quantities a cycle-level simulator would
    accumulate, collapsed into a per-TB latency.  A small deterministic
    jitter (hashed from kernel sequence number and TB id) models the
    execution-time variance the paper's stall distributions rely on. *)

type t = {
  tb_us : float array;            (** per-TB execution time, microseconds *)
  tb_mem_requests : float array;  (** per-TB coalesced global-memory requests *)
  avg_tb_us : float;
}

type profile
(** The launch-sequence-independent half of the model: per-TB dynamic
    instruction/memory counts and warp geometry.  A pure function of
    (analysis result, launch configuration) — this is what the launch-time
    analysis cache memoizes. *)

val profile : Bm_analysis.Symeval.result -> Bm_analysis.Footprint.launch -> profile

type profile_repr = {
  prr_insts : float array;     (** per-TB dynamic instructions *)
  prr_mem : float array;       (** per-TB dynamic memory instructions *)
  prr_warps : int;
  prr_warp_waves : float;
}
(** Transparent view of {!profile} for persistence layers (the disk-backed
    analysis store serializes profiles with bit-pattern floats).  The
    round trip [profile_of_repr (repr_of_profile p)] is the identity, bit
    for bit. *)

val repr_of_profile : profile -> profile_repr
val profile_of_repr : profile_repr -> profile

val of_profile : Config.t -> kernel_seq:int -> profile -> t
(** Apply the per-launch deterministic jitter (hashed from [kernel_seq] and
    the TB id) to a profile.  [of_launch cfg ~kernel_seq r l] is exactly
    [of_profile cfg ~kernel_seq (profile r l)] — splitting the two halves
    never changes a single bit of the result. *)

val of_launch :
  Config.t ->
  kernel_seq:int ->
  Bm_analysis.Symeval.result ->
  Bm_analysis.Footprint.launch ->
  t

val total_mem_requests : t -> float
