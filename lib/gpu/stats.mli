(** Simulation outcome metrics.

    Everything the paper's evaluation section reports is derived from these:
    total runtime (Fig. 9 speedups), time-weighted TB concurrency (Fig. 10),
    per-TB dependency-stall records (Fig. 11), and memory request counts
    (Fig. 13). *)

(** Structured simulation events, emitted by the simulator through an
    optional {!sink} (see [Bm_maestro.Sim.run]'s [?trace] argument).
    Timestamps are passed alongside the event; copy-engine events may be
    future-dated (the engine start time is decided when the copy is
    scheduled), so consumers must order entries by timestamp before
    analysis — [Bm_report.Trace] does this. *)
type event =
  | Kernel_enqueue of { seq : int; stream : int; tbs : int }
      (** The host issued the launch; the kernel occupies a slot of its
          stream's pre-launch window from this point. *)
  | Kernel_launched of { seq : int; stream : int }
      (** Launch processing finished; the kernel's TBs may be scheduled. *)
  | Kernel_drained of { seq : int; stream : int }
      (** Every TB of the kernel finished executing. *)
  | Kernel_completed of { seq : int; stream : int }
      (** The kernel retired (drained + stream predecessor completed):
          in-order completion, paper §III-B.1. *)
  | Tb_dispatch of { seq : int; tb : int }  (** TB began executing on an SM slot. *)
  | Tb_finish of { seq : int; tb : int }
  | Dep_satisfied of { seq : int; tb : int }
      (** The TB's last fine-grain parent dependency was satisfied.  Not
          emitted for TBs with no parents (their dependencies are vacuously
          satisfied at time 0). *)
  | Copy_start of { cmd : int; bytes : int; d2h : bool; blocking : bool }
      (** [blocking] marks synchronous host-stalling copies (baseline
          stream semantics); otherwise the copy engine ran it. *)
  | Copy_finish of { cmd : int; bytes : int; d2h : bool; blocking : bool }
  | Dlb_spill of { seq : int; needed : int; capacity : int }
      (** The kernel pair's dependency lists exceed the Dependency List
          Buffer; entries fall back to global memory. *)
  | Pcb_spill of { seq : int; needed : int; capacity : int }
      (** Child TB count exceeds the Parent Counter Buffer. *)

type sink = float -> event -> unit

val event_name : event -> string
(** Stable snake_case tag, used by the CSV exporter and error messages. *)

type tb_record = {
  r_kernel : int;      (** launch sequence number *)
  r_tb : int;
  r_dep_ready : float; (** when the TB's fine-grain data dependencies were satisfied *)
  r_start : float;
  r_finish : float;
}

type t = {
  total_us : float;
  busy_us : float;           (** time during which at least one TB was running *)
  records : tb_record array;
  avg_concurrency : float;   (** time-weighted mean number of running TBs *)
  base_mem_requests : float; (** application (data) memory requests *)
  dep_mem_requests : float;  (** extra requests for dependency-list traffic *)
}

val stall_fractions : t -> float array
(** Per TB: (start - dep_ready) / duration — Fig. 11's normalized stall.
    TBs with zero duration are skipped. *)

val speedup : baseline:t -> t -> float
(** baseline.total / this.total *)

val mem_overhead_pct : t -> float
(** dependency traffic as a percentage of data traffic (Fig. 13). *)

val busy_concurrency : t -> float
(** Mean running-TB count conditional on the device being busy — the
    utilization metric normalized in Fig. 10. *)
