type sizes = {
  plain_bytes : int;
  encoded_bytes : int;
  pattern : Pattern.t;
}

let entry_bytes = 4

let measure rel =
  let pattern = Pattern.classify rel in
  match rel with
  | Bipartite.Independent -> { plain_bytes = entry_bytes; encoded_bytes = entry_bytes; pattern }
  | Bipartite.Fully_connected ->
    (* Plain would materialize M*N edges; we cannot know M and N here, so
       callers measuring fully-connected pairs should use [measure_full]. *)
    { plain_bytes = entry_bytes; encoded_bytes = entry_bytes; pattern }
  | Bipartite.Graph g ->
    let edges = Array.fold_left (fun acc ps -> acc + Array.length ps) 0 g.parents_of in
    let n = g.n_parents and m = g.n_children in
    let plain_bytes = edges * entry_bytes in
    let encoded_bytes =
      match pattern with
      | Pattern.Independent | Pattern.Fully_connected -> entry_bytes
      | Pattern.One_to_one -> n * entry_bytes
      | Pattern.One_to_n -> (m + n) * entry_bytes
      | Pattern.N_to_one -> n * entry_bytes
      | Pattern.N_group -> (m + n) * entry_bytes
      | Pattern.Overlapped ->
        let degmax = Bipartite.max_in_degree g in
        (n + (m * degmax)) * entry_bytes
      | Pattern.Irregular -> plain_bytes
    in
    (* Encoding never exceeds the plain representation. *)
    { plain_bytes; encoded_bytes = min encoded_bytes plain_bytes; pattern }

let measure_full ~n_parents ~n_children =
  {
    plain_bytes = n_parents * n_children * entry_bytes;
    encoded_bytes = entry_bytes;
    pattern = Pattern.Fully_connected;
  }

(* --- the codec itself ------------------------------------------------- *)

type encoded =
  | Enc_independent of { n_parents : int; n_children : int }
  | Enc_full of { n_parents : int; n_children : int }
  | Enc_one_to_one of { n : int }
  | Enc_one_to_n of { n_parents : int; parent_of : int array }
  | Enc_n_to_one of { n_children : int; child_of : int array }
  | Enc_n_group of { group_of_parent : int array; group_of_child : int array }
  | Enc_overlapped of { n_parents : int; windows : (int * int) array }
  | Enc_irregular of { n_parents : int; parents_of : int array array }

let encode ~n_parents ~n_children rel =
  match rel with
  | Bipartite.Independent -> Enc_independent { n_parents; n_children }
  | Bipartite.Fully_connected -> Enc_full { n_parents; n_children }
  | Bipartite.Graph g -> (
    match Pattern.classify rel with
    | Pattern.One_to_one -> Enc_one_to_one { n = g.Bipartite.n_parents }
    | Pattern.One_to_n ->
      (* is_one_to_n guarantees every child has exactly one parent. *)
      Enc_one_to_n
        { n_parents = g.Bipartite.n_parents;
          parent_of = Array.map (fun ps -> ps.(0)) g.Bipartite.parents_of }
    | Pattern.N_to_one ->
      Enc_n_to_one
        { n_children = g.Bipartite.n_children;
          child_of =
            Array.map
              (fun cs -> if Array.length cs = 0 then -1 else cs.(0))
              g.Bipartite.children_of }
    | Pattern.N_group ->
      (* Group ids in first-seen order over children; is_n_group guarantees
         each parent belongs to exactly one group (or none). *)
      let groups = Hashtbl.create 8 in
      let next = ref 0 in
      let group_of_child =
        Array.map
          (fun ps ->
            if Array.length ps = 0 then -1
            else begin
              let key = Array.to_list ps in
              match Hashtbl.find_opt groups key with
              | Some gid -> gid
              | None ->
                let gid = !next in
                incr next;
                Hashtbl.add groups key gid;
                gid
            end)
          g.Bipartite.parents_of
      in
      let group_of_parent = Array.make g.Bipartite.n_parents (-1) in
      Hashtbl.iter (fun ps gid -> List.iter (fun p -> group_of_parent.(p) <- gid) ps) groups;
      Enc_n_group { group_of_parent; group_of_child }
    | Pattern.Overlapped ->
      Enc_overlapped
        { n_parents = g.Bipartite.n_parents;
          windows =
            Array.map
              (fun ps -> if Array.length ps = 0 then (0, 0) else (ps.(0), Array.length ps))
              g.Bipartite.parents_of }
    | Pattern.Independent | Pattern.Fully_connected | Pattern.Irregular ->
      (* classify never maps a Graph to Independent/Fully_connected, but the
         plain adjacency fallback is correct for them regardless. *)
      Enc_irregular
        { n_parents = g.Bipartite.n_parents;
          parents_of = Array.map Array.copy g.Bipartite.parents_of })

(* Decoding builds the [Bipartite.t] record directly rather than expanding
   to an edge list for [Bipartite.of_edges]: the encoded forms are already
   structured, and the edge-list detour (a tuple per edge, a [List.mem]
   dedup scan per edge — quadratic on an N-to-one row — and a polymorphic
   sort per row) costs far more than the result itself.  Every branch
   produces the same sorted, deduplicated rows [of_edges] would, validating
   indices the same way ([Invalid_argument] on out-of-range); [children_of]
   is derived from [parents_of] by a counting pass, and walking children in
   ascending order keeps its rows sorted for free. *)
let graph_of_parents_of ~n_parents (parents_of : int array array) =
  let n_children = Array.length parents_of in
  let deg = Array.make n_parents 0 in
  Array.iter
    (fun ps ->
      Array.iter
        (fun p ->
          if p < 0 || p >= n_parents then invalid_arg "Encode.decode: node out of range";
          deg.(p) <- deg.(p) + 1)
        ps)
    parents_of;
  let children_of = Array.init n_parents (fun p -> Array.make deg.(p) 0) in
  let fill = Array.make n_parents 0 in
  Array.iteri
    (fun c ps ->
      Array.iter
        (fun p ->
          children_of.(p).(fill.(p)) <- c;
          fill.(p) <- fill.(p) + 1)
        ps)
    parents_of;
  Bipartite.Graph { Bipartite.n_parents; n_children; parents_of; children_of }

let decode = function
  | Enc_independent _ -> Bipartite.Independent
  | Enc_full _ -> Bipartite.Fully_connected
  | Enc_one_to_one { n } ->
    if n < 0 then invalid_arg "Encode.decode: negative size";
    Bipartite.Graph
      {
        Bipartite.n_parents = n;
        n_children = n;
        parents_of = Array.init n (fun c -> [| c |]);
        children_of = Array.init n (fun p -> [| p |]);
      }
  | Enc_one_to_n { n_parents; parent_of } ->
    graph_of_parents_of ~n_parents (Array.map (fun p -> [| p |]) parent_of)
  | Enc_n_to_one { n_children; child_of } ->
    if n_children < 0 then invalid_arg "Encode.decode: negative size";
    let n_parents = Array.length child_of in
    let cnt = Array.make n_children 0 in
    Array.iter
      (fun c ->
        if c >= n_children then invalid_arg "Encode.decode: node out of range";
        if c >= 0 then cnt.(c) <- cnt.(c) + 1)
      child_of;
    let parents_of = Array.init n_children (fun c -> Array.make cnt.(c) 0) in
    let fill = Array.make n_children 0 in
    Array.iteri
      (fun p c ->
        if c >= 0 then begin
          parents_of.(c).(fill.(c)) <- p;
          fill.(c) <- fill.(c) + 1
        end)
      child_of;
    Bipartite.Graph
      {
        Bipartite.n_parents;
        n_children;
        parents_of;
        children_of = Array.map (fun c -> if c >= 0 then [| c |] else [||]) child_of;
      }
  | Enc_n_group { group_of_parent; group_of_child } ->
    (* Parents of each group collected once (ascending, so sorted), not
       re-scanned per child. *)
    let members : (int, int list ref) Hashtbl.t = Hashtbl.create 8 in
    Array.iteri
      (fun p gid ->
        if gid >= 0 then
          match Hashtbl.find_opt members gid with
          | Some l -> l := p :: !l
          | None -> Hashtbl.add members gid (ref [ p ]))
      group_of_parent;
    let arrays = Hashtbl.create 8 in
    Hashtbl.iter (fun gid l -> Hashtbl.add arrays gid (Array.of_list (List.rev !l))) members;
    graph_of_parents_of ~n_parents:(Array.length group_of_parent)
      (Array.map
         (fun gid ->
           if gid < 0 then [||]
           else
             match Hashtbl.find_opt arrays gid with
             | Some a -> Array.copy a
             | None -> [||])
         group_of_child)
  | Enc_overlapped { n_parents; windows } ->
    graph_of_parents_of ~n_parents
      (Array.map (fun (first, len) -> Array.init len (fun i -> first + i)) windows)
  | Enc_irregular { n_parents; parents_of } ->
    (* Arbitrary rows: normalize to the sorted, deduplicated form
       [of_edges] guarantees. *)
    graph_of_parents_of ~n_parents
      (Array.map
         (fun row ->
           let r = Array.copy row in
           Array.sort (fun (a : int) b -> compare a b) r;
           let n = Array.length r in
           let w = ref 0 in
           for i = 0 to n - 1 do
             if !w = 0 || r.(!w - 1) <> r.(i) then begin
               r.(!w) <- r.(i);
               incr w
             end
           done;
           if !w = n then r else Array.sub r 0 !w)
         parents_of)

let pattern_of_encoded = function
  | Enc_independent _ -> Pattern.Independent
  | Enc_full _ -> Pattern.Fully_connected
  | Enc_one_to_one _ -> Pattern.One_to_one
  | Enc_one_to_n _ -> Pattern.One_to_n
  | Enc_n_to_one _ -> Pattern.N_to_one
  | Enc_n_group _ -> Pattern.N_group
  | Enc_overlapped _ -> Pattern.Overlapped
  | Enc_irregular _ -> Pattern.Irregular

let encoded_words = function
  | Enc_independent _ | Enc_full _ | Enc_one_to_one _ -> 0
  | Enc_one_to_n { parent_of; _ } -> Array.length parent_of
  | Enc_n_to_one { child_of; _ } -> Array.length child_of
  | Enc_n_group { group_of_parent; group_of_child } ->
    Array.length group_of_parent + Array.length group_of_child
  | Enc_overlapped { windows; _ } -> 2 * Array.length windows
  | Enc_irregular { parents_of; _ } ->
    Array.fold_left (fun acc ps -> acc + 1 + Array.length ps) 0 parents_of

let encoded_overhead_class = function
  | Pattern.Fully_connected -> "O(1)"
  | Pattern.N_group -> "O(M+N)"
  | Pattern.One_to_one -> "O(N)"
  | Pattern.One_to_n -> "O(M+N)"
  | Pattern.N_to_one -> "O(N)"
  | Pattern.Overlapped -> "O(N + M.deg_max)"
  | Pattern.Independent -> "O(1)"
  | Pattern.Irregular -> "O(E)"

let pp_sizes ppf s =
  Format.fprintf ppf "%s: plain=%dB encoded=%dB" (Pattern.name s.pattern) s.plain_bytes
    s.encoded_bytes
