type sizes = {
  plain_bytes : int;
  encoded_bytes : int;
  pattern : Pattern.t;
}

let entry_bytes = 4

let measure rel =
  let pattern = Pattern.classify rel in
  match rel with
  | Bipartite.Independent -> { plain_bytes = entry_bytes; encoded_bytes = entry_bytes; pattern }
  | Bipartite.Fully_connected ->
    (* Plain would materialize M*N edges; we cannot know M and N here, so
       callers measuring fully-connected pairs should use [measure_full]. *)
    { plain_bytes = entry_bytes; encoded_bytes = entry_bytes; pattern }
  | Bipartite.Graph g ->
    let edges = Array.fold_left (fun acc ps -> acc + Array.length ps) 0 g.parents_of in
    let n = g.n_parents and m = g.n_children in
    let plain_bytes = edges * entry_bytes in
    let encoded_bytes =
      match pattern with
      | Pattern.Independent | Pattern.Fully_connected -> entry_bytes
      | Pattern.One_to_one -> n * entry_bytes
      | Pattern.One_to_n -> (m + n) * entry_bytes
      | Pattern.N_to_one -> n * entry_bytes
      | Pattern.N_group -> (m + n) * entry_bytes
      | Pattern.Overlapped ->
        let degmax = Bipartite.max_in_degree g in
        (n + (m * degmax)) * entry_bytes
      | Pattern.Irregular -> plain_bytes
    in
    (* Encoding never exceeds the plain representation. *)
    { plain_bytes; encoded_bytes = min encoded_bytes plain_bytes; pattern }

let measure_full ~n_parents ~n_children =
  {
    plain_bytes = n_parents * n_children * entry_bytes;
    encoded_bytes = entry_bytes;
    pattern = Pattern.Fully_connected;
  }

(* --- the codec itself ------------------------------------------------- *)

type encoded =
  | Enc_independent of { n_parents : int; n_children : int }
  | Enc_full of { n_parents : int; n_children : int }
  | Enc_one_to_one of { n : int }
  | Enc_one_to_n of { n_parents : int; parent_of : int array }
  | Enc_n_to_one of { n_children : int; child_of : int array }
  | Enc_n_group of { group_of_parent : int array; group_of_child : int array }
  | Enc_overlapped of { n_parents : int; windows : (int * int) array }
  | Enc_irregular of { n_parents : int; parents_of : int array array }

let encode ~n_parents ~n_children rel =
  match rel with
  | Bipartite.Independent -> Enc_independent { n_parents; n_children }
  | Bipartite.Fully_connected -> Enc_full { n_parents; n_children }
  | Bipartite.Graph g -> (
    match Pattern.classify rel with
    | Pattern.One_to_one -> Enc_one_to_one { n = g.Bipartite.n_parents }
    | Pattern.One_to_n ->
      (* is_one_to_n guarantees every child has exactly one parent. *)
      Enc_one_to_n
        { n_parents = g.Bipartite.n_parents;
          parent_of = Array.map (fun ps -> ps.(0)) g.Bipartite.parents_of }
    | Pattern.N_to_one ->
      Enc_n_to_one
        { n_children = g.Bipartite.n_children;
          child_of =
            Array.map
              (fun cs -> if Array.length cs = 0 then -1 else cs.(0))
              g.Bipartite.children_of }
    | Pattern.N_group ->
      (* Group ids in first-seen order over children; is_n_group guarantees
         each parent belongs to exactly one group (or none). *)
      let groups = Hashtbl.create 8 in
      let next = ref 0 in
      let group_of_child =
        Array.map
          (fun ps ->
            if Array.length ps = 0 then -1
            else begin
              let key = Array.to_list ps in
              match Hashtbl.find_opt groups key with
              | Some gid -> gid
              | None ->
                let gid = !next in
                incr next;
                Hashtbl.add groups key gid;
                gid
            end)
          g.Bipartite.parents_of
      in
      let group_of_parent = Array.make g.Bipartite.n_parents (-1) in
      Hashtbl.iter (fun ps gid -> List.iter (fun p -> group_of_parent.(p) <- gid) ps) groups;
      Enc_n_group { group_of_parent; group_of_child }
    | Pattern.Overlapped ->
      Enc_overlapped
        { n_parents = g.Bipartite.n_parents;
          windows =
            Array.map
              (fun ps -> if Array.length ps = 0 then (0, 0) else (ps.(0), Array.length ps))
              g.Bipartite.parents_of }
    | Pattern.Independent | Pattern.Fully_connected | Pattern.Irregular ->
      (* classify never maps a Graph to Independent/Fully_connected, but the
         plain adjacency fallback is correct for them regardless. *)
      Enc_irregular
        { n_parents = g.Bipartite.n_parents;
          parents_of = Array.map Array.copy g.Bipartite.parents_of })

let graph_of_parent_lists ~n_parents parents_of =
  let n_children = Array.length parents_of in
  let edges = ref [] in
  Array.iteri (fun c ps -> Array.iter (fun p -> edges := (p, c) :: !edges) ps) parents_of;
  Bipartite.Graph (Bipartite.of_edges ~n_parents ~n_children !edges)

let decode = function
  | Enc_independent _ -> Bipartite.Independent
  | Enc_full _ -> Bipartite.Fully_connected
  | Enc_one_to_one { n } ->
    graph_of_parent_lists ~n_parents:n (Array.init n (fun c -> [| c |]))
  | Enc_one_to_n { n_parents; parent_of } ->
    graph_of_parent_lists ~n_parents (Array.map (fun p -> [| p |]) parent_of)
  | Enc_n_to_one { n_children; child_of } ->
    let parents_of = Array.make n_children [] in
    Array.iteri
      (fun p c -> if c >= 0 then parents_of.(c) <- p :: parents_of.(c))
      child_of;
    graph_of_parent_lists ~n_parents:(Array.length child_of)
      (Array.map (fun l -> Array.of_list (List.sort compare l)) parents_of)
  | Enc_n_group { group_of_parent; group_of_child } ->
    let parents_in gid =
      let acc = ref [] in
      Array.iteri (fun p g -> if g = gid then acc := p :: !acc) group_of_parent;
      Array.of_list (List.sort compare !acc)
    in
    graph_of_parent_lists ~n_parents:(Array.length group_of_parent)
      (Array.map (fun gid -> if gid < 0 then [||] else parents_in gid) group_of_child)
  | Enc_overlapped { n_parents; windows } ->
    graph_of_parent_lists ~n_parents
      (Array.map (fun (first, len) -> Array.init len (fun i -> first + i)) windows)
  | Enc_irregular { n_parents; parents_of } -> graph_of_parent_lists ~n_parents parents_of

let pattern_of_encoded = function
  | Enc_independent _ -> Pattern.Independent
  | Enc_full _ -> Pattern.Fully_connected
  | Enc_one_to_one _ -> Pattern.One_to_one
  | Enc_one_to_n _ -> Pattern.One_to_n
  | Enc_n_to_one _ -> Pattern.N_to_one
  | Enc_n_group _ -> Pattern.N_group
  | Enc_overlapped _ -> Pattern.Overlapped
  | Enc_irregular _ -> Pattern.Irregular

let encoded_words = function
  | Enc_independent _ | Enc_full _ | Enc_one_to_one _ -> 0
  | Enc_one_to_n { parent_of; _ } -> Array.length parent_of
  | Enc_n_to_one { child_of; _ } -> Array.length child_of
  | Enc_n_group { group_of_parent; group_of_child } ->
    Array.length group_of_parent + Array.length group_of_child
  | Enc_overlapped { windows; _ } -> 2 * Array.length windows
  | Enc_irregular { parents_of; _ } ->
    Array.fold_left (fun acc ps -> acc + 1 + Array.length ps) 0 parents_of

let encoded_overhead_class = function
  | Pattern.Fully_connected -> "O(1)"
  | Pattern.N_group -> "O(M+N)"
  | Pattern.One_to_one -> "O(N)"
  | Pattern.One_to_n -> "O(M+N)"
  | Pattern.N_to_one -> "O(N)"
  | Pattern.Overlapped -> "O(N + M.deg_max)"
  | Pattern.Independent -> "O(1)"
  | Pattern.Irregular -> "O(E)"

let pp_sizes ppf s =
  Format.fprintf ppf "%s: plain=%dB encoded=%dB" (Pattern.name s.pattern) s.plain_bytes
    s.encoded_bytes
