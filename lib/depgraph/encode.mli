(** Storage model for bipartite dependency graphs (Table I, Table III).

    BlockMaestro stores each pair's graph in global memory; the encoded
    size depends on the detected pattern.  [plain_bytes] is the baseline
    adjacency-list representation Table III normalizes against. *)

type sizes = {
  plain_bytes : int;    (** un-encoded adjacency list: one 32-bit entry per edge *)
  encoded_bytes : int;  (** pattern-aware encoding, per Table I *)
  pattern : Pattern.t;
}

val entry_bytes : int
(** 4: all node ids and counters round up to 32-bit words in memory. *)

val measure : Bipartite.relation -> sizes
(** For [Fully_connected] relations this cannot recover M and N; use
    {!measure_full} when they are known. *)

val measure_full : n_parents:int -> n_children:int -> sizes
(** Sizes of a fully-connected pair: plain is M*N edges, encoded is a flag. *)

(** {2 Codec}

    The actual pattern-aware representation (not just its size): {!encode}
    compresses a relation into the Table I form its pattern admits, and
    {!decode} reconstructs the relation exactly.  Decoding an encoded graph
    reproduces the original relation bit-for-bit
    ([decode (encode ~n_parents ~n_children rel)] equals [rel], with
    [Graph] payloads compared by {!Bipartite.equal}) — the round-trip
    property test/test_depgraph.ml checks over random graphs of every
    pattern. *)

type encoded =
  | Enc_independent of { n_parents : int; n_children : int }
  | Enc_full of { n_parents : int; n_children : int }
  | Enc_one_to_one of { n : int }
  | Enc_one_to_n of { n_parents : int; parent_of : int array }
      (** child id -> its single parent *)
  | Enc_n_to_one of { n_children : int; child_of : int array }
      (** parent id -> its single child, or -1 *)
  | Enc_n_group of { group_of_parent : int array; group_of_child : int array }
      (** group ids; -1 marks a node outside every group *)
  | Enc_overlapped of { n_parents : int; windows : (int * int) array }
      (** child id -> (first parent, window length) *)
  | Enc_irregular of { n_parents : int; parents_of : int array array }
      (** plain adjacency fallback *)

val encode : n_parents:int -> n_children:int -> Bipartite.relation -> encoded
(** The dimensions are only consulted for [Independent] / [Fully_connected]
    relations (which do not carry them); graphs know their own. *)

val decode : encoded -> Bipartite.relation

val pattern_of_encoded : encoded -> Pattern.t

val encoded_words : encoded -> int
(** 32-bit words of variable payload (excluding the constant-size tag and
    dimension header) — the quantity {!measure}'s [encoded_bytes] models. *)

val encoded_overhead_class : Pattern.t -> string
(** The Table I complexity class, e.g. "O(M+N)" for n-group. *)

val pp_sizes : Format.formatter -> sizes -> unit
