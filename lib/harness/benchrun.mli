(** The machine-readable bench trajectory: collection and regression
    comparison behind [bench --json FILE] / [bench --compare OLD.json].

    Promoted from the bench executable into a library so tests can assert
    the parallel harness's core guarantee: {!collect} under any domain
    count produces cycle-identical results to a sequential run.  Every
    (app x mode) simulation is an independent deterministic task; the suite
    fans out over {!Bm_parallel.map_ordered} with one task per app, each
    task owning its metrics registries and span profiler (single-domain
    sinks), and results are collected in suite order. *)

val collect :
  ?apps:(string * (unit -> Bm_gpu.Command.app)) list ->
  ?jobs:int ->
  ?cache_dir:string ->
  unit ->
  Bm_metrics.Benchfile.t
(** Run [apps] (default {!Bm_workloads.Suite.all}) under baseline + the
    Fig. 9 modes with metrics and the span profiler attached.  [jobs]
    (default {!Bm_parallel.default_jobs}) sizes the domain pool; every
    simulated quantity — cycles, speedups, high-water marks, memory
    overhead — is identical for every [jobs], only the wall-clock pipeline
    spans vary.  [cache_dir] attaches the persistent analysis store: each
    app task opens its own {!Bm_maestro.Store} handle on the shared
    directory, which only changes preparation wall-clock, never cycles. *)

val write : ?jobs:int -> ?cache_dir:string -> string -> unit
(** [collect] and save, printing a one-line summary to stdout. *)

val compare_against : ?jobs:int -> ?cache_dir:string -> threshold_pct:float -> string -> int
(** Re-measure and diff simulated cycles against a saved file.  Returns the
    process exit code: 0 in-threshold, 1 regression beyond
    [threshold_pct], 2 I/O or parse failure on the old file. *)

val cycles_of : Bm_gpu.Config.t -> Bm_gpu.Stats.t -> float
(** Simulated microseconds converted to GPU core cycles. *)
