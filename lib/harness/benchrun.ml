(* `bench --json FILE` / `--compare OLD.json`: the machine-readable bench
   trajectory (moved out of the bench executable so the parallel/sequential
   identity is testable).

   [collect] runs every suite app under baseline + the Fig. 9 modes with
   the metrics registry attached and the span profiler wrapping the host
   pipeline, then packs the results into a schema-versioned Benchfile.
   Apps are independent tasks on a Bm_parallel domain pool; each task owns
   its own profiler and per-mode registries (the sinks are single-domain
   by design) and the pool returns app results in suite order, so the file
   layout and every simulated quantity are identical for any domain count.

   [compare] re-measures and diffs the *simulated cycles* against a saved
   file — cycles are deterministic, so any delta is a behavior change, not
   timer noise — and returns non-zero when a slowdown exceeds the
   threshold. *)

module Config = Bm_gpu.Config
module Stats = Bm_gpu.Stats
module Mode = Bm_maestro.Mode
module Prep = Bm_maestro.Prep
module Sim = Bm_maestro.Sim
module Suite = Bm_workloads.Suite
module Metrics = Bm_metrics.Metrics
module Prof = Bm_metrics.Prof
module Benchfile = Bm_metrics.Benchfile
module Report = Bm_report.Report

let cycles_of (cfg : Config.t) (s : Stats.t) =
  (* total_us x (cycles/us): clock_ghz GHz = clock_ghz * 1000 cycles/us. *)
  s.Stats.total_us *. cfg.Config.clock_ghz *. 1000.0

let collect_app ?cache_dir cfg modes (name, gen) =
  let prof = Prof.create () in
  (* Each app task owns its launch-time analysis cache, like its profiler
     and registries: caches are single-domain sinks (DESIGN §8/§9).  The two
     preparations of one app share it, so the reordered prep hits on every
     kernel the plain prep analyzed.  A cache directory, by contrast, is
     shared: each task opens its own Store handle (atomic writes, values
     pure in their keys), so results stay cycle-identical for any --jobs. *)
  let store =
    match cache_dir with
    | None -> None
    | Some dir -> ( match Bm_maestro.Store.open_dir dir with Ok s -> Some s | Error _ -> None)
  in
  let cache = Bm_maestro.Cache.create ?store () in
  let app = Prof.span prof "build" gen in
  (* The two reordering variants share their preparation, like
     Runner.simulate_all; both charge the same "prepare" span. *)
  let prep_plain =
    lazy (Prof.span prof "prepare" (fun () -> Prep.prepare ~reorder:false ~prof ~cache cfg app))
  in
  let prep_reordered =
    lazy (Prof.span prof "prepare" (fun () -> Prep.prepare ~reorder:true ~prof ~cache cfg app))
  in
  let runs =
    List.map
      (fun mode ->
        let prep =
          if Mode.reorders mode then Lazy.force prep_reordered else Lazy.force prep_plain
        in
        let metrics = Metrics.create () in
        let stats = Prof.span prof "simulate" (fun () -> Sim.run ~metrics cfg mode prep) in
        (mode, metrics, stats))
      modes
  in
  let baseline =
    match List.find_opt (fun (m, _, _) -> m = Mode.Baseline) runs with
    | Some (_, _, s) -> s
    | None -> assert false
  in
  let mode_results =
    List.map
      (fun (mode, metrics, stats) ->
        let hw g =
          match Metrics.find_gauge metrics g with
          | Some g -> Metrics.high_water g
          | None -> 0.0
        in
        {
          Benchfile.mr_mode = Mode.name mode;
          mr_total_us = stats.Stats.total_us;
          mr_cycles = cycles_of cfg stats;
          mr_speedup = Stats.speedup ~baseline stats;
          mr_dlb_high_water = hw "dlb.occupancy";
          mr_pcb_high_water = hw "pcb.occupancy";
          mr_mem_overhead_pct = Stats.mem_overhead_pct stats;
        })
      runs
  in
  let pipeline =
    List.map
      (fun (s : Prof.summary) -> (String.concat ";" s.Prof.s_path, s.Prof.s_total_s *. 1e6))
      (Prof.summaries prof)
  in
  { Benchfile.ar_app = name; ar_pipeline_us = pipeline; ar_modes = mode_results }

let collect ?apps ?jobs ?cache_dir () =
  let cfg = Config.titan_x_pascal in
  let modes = Mode.all_fig9 in
  let apps = match apps with Some a -> a | None -> Suite.all in
  let results =
    Bm_parallel.map_ordered ?domains:jobs (collect_app ?cache_dir cfg modes) (Array.of_list apps)
  in
  {
    Benchfile.bf_schema = Benchfile.schema_version;
    bf_config = Config.to_assoc cfg;
    bf_apps = Array.to_list results;
  }

let write ?jobs ?cache_dir file =
  let bf = collect ?jobs ?cache_dir () in
  Benchfile.save file bf;
  Printf.printf "wrote %s: %d apps x %d modes (schema v%d)\n" file
    (List.length bf.Benchfile.bf_apps)
    (match bf.Benchfile.bf_apps with
    | a :: _ -> List.length a.Benchfile.ar_modes
    | [] -> 0)
    Benchfile.schema_version

(* Returns the process exit code: 0 in-threshold, 1 regression, 2 I/O or
   parse failure on the old file. *)
let compare_against ?jobs ?cache_dir ~threshold_pct old_file =
  match Benchfile.load old_file with
  | Error msg ->
    Printf.eprintf "cannot load %s: %s\n" old_file msg;
    2
  | Ok old ->
    let current = collect ?jobs ?cache_dir () in
    let ds = Benchfile.deltas ~old current in
    Report.print (Benchfile.delta_table ~threshold_pct ds);
    let regs = Benchfile.regressions ~threshold_pct ds in
    if regs = [] then begin
      Printf.printf "no regression beyond %.1f%% across %d (app, mode) pairs\n" threshold_pct
        (List.length ds);
      0
    end
    else begin
      Printf.eprintf "%d (app, mode) pair(s) regressed beyond %.1f%%:\n" (List.length regs)
        threshold_pct;
      List.iter
        (fun (d : Benchfile.delta) ->
          Printf.eprintf "  %s / %s: %+.2f%% (%.0f -> %.0f cycles)\n" d.Benchfile.d_app
            d.Benchfile.d_mode d.Benchfile.d_pct d.Benchfile.d_old_cycles d.Benchfile.d_new_cycles)
        regs;
      1
    end
