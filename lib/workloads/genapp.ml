module Rng = Bm_engine.Rng
module Command = Bm_gpu.Command

type body = Map | Stencil of { halo : int }

type kspec = {
  k_body : body;
  k_work : int;
  k_grid : int;
  k_sync_after : bool;
}

type spec = {
  g_name : string;
  g_block : int;
  g_chains : kspec list array;
}

(* The RNG draw order below reproduces the original test/test_trace.ml
   generator verbatim (streams; per stream the chain length; then per
   launch: grid, body coin, work, sync coin — in round-robin order), so
   seeds recorded before the promotion still replay the same apps. *)
let generate ?(max_streams = 2) ?(max_len = 5) ?(max_grid = 16) ?(block = 64) rng idx =
  let n_streams = 1 + Rng.int_below rng max_streams in
  let lens = Array.init n_streams (fun _ -> 1 + Rng.int_below rng max_len) in
  let chains = Array.map (fun _ -> ref []) lens in
  let next = Array.make n_streams 0 in
  let remaining = ref (Array.fold_left ( + ) 0 lens) in
  while !remaining > 0 do
    Array.iteri
      (fun s len ->
        if next.(s) < len then begin
          next.(s) <- next.(s) + 1;
          decr remaining;
          let grid = 1 + Rng.int_below rng max_grid in
          let body = if Rng.int_below rng 2 = 0 then Map else Stencil { halo = 1 } in
          let work = 1 + Rng.int_below rng 8 in
          let sync = Rng.int_below rng 5 = 0 in
          chains.(s) := { k_body = body; k_work = work; k_grid = grid; k_sync_after = sync }
                        :: !(chains.(s))
        end)
      lens
  done;
  {
    g_name = Printf.sprintf "rand%03d" idx;
    g_block = block;
    g_chains = Array.map (fun c -> List.rev !c) chains;
  }

let kernels spec = Array.fold_left (fun acc c -> acc + List.length c) 0 spec.g_chains

let kernel_of_kspec ~name ks =
  match ks.k_body with
  | Map -> Templates.map1 ~name ~work:ks.k_work
  | Stencil { halo } -> Templates.stencil1d ~name ~halo ~work:ks.k_work

let kname spec ~stream ~pos (ks : kspec) =
  let tag = match ks.k_body with Map -> "map" | Stencil _ -> "sten" in
  Printf.sprintf "%s_s%d_k%d_%s" spec.g_name stream pos tag

let build spec =
  let d = Dsl.create spec.g_name in
  let chains =
    Array.mapi
      (fun s chain ->
        let len = List.length chain in
        (* Each chain owns a ladder of len+1 disjoint buffers: kernel i
           reads bufs.(i), writes bufs.(i+1).  Buffers are sized for the
           chain's largest launch so every grid is in-bounds. *)
        let max_grid = List.fold_left (fun acc k -> max acc k.k_grid) 1 chain in
        let bufs = Array.init (len + 1) (fun _ -> Dsl.buffer d ~elems:(max_grid * spec.g_block)) in
        if len > 0 then Dsl.h2d d bufs.(0);
        (s, Array.of_list chain, bufs, ref 0))
      spec.g_chains
  in
  let remaining = ref (kernels spec) in
  while !remaining > 0 do
    Array.iter
      (fun (s, chain, bufs, next) ->
        if !next < Array.length chain then begin
          let i = !next in
          incr next;
          decr remaining;
          let ks = chain.(i) in
          let n = ks.k_grid * spec.g_block in
          let kernel = kernel_of_kspec ~name:(kname spec ~stream:s ~pos:i ks) ks in
          Dsl.launch d ~stream:s kernel ~grid:ks.k_grid ~block:spec.g_block
            ~args:
              [ ("n", Command.Int n); ("IN", Command.Buf bufs.(i)); ("OUT", Command.Buf bufs.(i + 1)) ];
          if ks.k_sync_after then Dsl.sync d
        end)
      chains
  done;
  Array.iter
    (fun (_, chain, bufs, _) ->
      if Array.length chain > 0 then Dsl.d2h d bufs.(Array.length chain))
    chains;
  Dsl.app d

type corun = {
  c_a : spec;
  c_b : spec;
  c_submission : [ `Fifo | `Round_robin | `Packed ];
  c_partition : (int * int) option;
}

let generate_corun ?(num_sms = 28) ?max_streams ?max_len ?(max_grid = 48) ?block rng idx =
  (* Two independent apps drawn back-to-back, then the co-run shape.  Draw
     order is part of the seed contract, like [generate].  The grid bound
     defaults higher than [generate]'s so small partitions (down to one SM
     = 32 TB slots) actually saturate their pools — slot contention is the
     behavior this axis exists to stress. *)
  let a = generate ?max_streams ?max_len ~max_grid ?block rng (2 * idx) in
  let b = generate ?max_streams ?max_len ~max_grid ?block rng ((2 * idx) + 1) in
  let a = { a with g_name = Printf.sprintf "corun%03da" idx } in
  let b = { b with g_name = Printf.sprintf "corun%03db" idx } in
  let c_submission =
    match Rng.int_below rng 3 with 0 -> `Fifo | 1 -> `Round_robin | _ -> `Packed
  in
  let c_partition =
    if Rng.int_below rng 2 = 0 then None
    else begin
      let sa = 1 + Rng.int_below rng (num_sms - 1) in
      Some (sa, num_sms - sa)
    end
  in
  { c_a = a; c_b = b; c_submission; c_partition }

(* ------------------------------------------------------------------ *)
(* Mixed-criticality deadline specs                                    *)
(* ------------------------------------------------------------------ *)

type criticality = Hard | Soft

type deadline_spec = {
  d_criticality : criticality;
  d_factor : float;
}

(* Deadlines are generated as {e factors} of the app's analytical
   minimum-makespan lower bound, not absolute ticks — this module never
   sees the cost model, so callers scale by
   [Bm_maestro.Deadline.min_makespan_us].  Hard specs are tight and may
   land below 1.0 (provably unmeetable, exercising admission rejection);
   soft specs are lax and should always be met. *)
let generate_deadline rng =
  if Rng.int_below rng 2 = 0 then
    { d_criticality = Hard; d_factor = 0.5 +. Rng.float_01 rng }
  else { d_criticality = Soft; d_factor = 2.0 +. (8.0 *. Rng.float_01 rng) }

type corun_deadlines = {
  cd_corun : corun;
  cd_a : deadline_spec;
  cd_b : deadline_spec;
}

(* The deadline draws come strictly after every [generate_corun] draw, so
   the co-run half of the seed contract is unchanged: for any seed,
   [cd_corun] is exactly what [generate_corun] alone would produce. *)
let generate_corun_deadlines ?num_sms ?max_streams ?max_len ?max_grid ?block rng idx =
  let c = generate_corun ?num_sms ?max_streams ?max_len ?max_grid ?block rng idx in
  let cd_a = generate_deadline rng in
  let cd_b = generate_deadline rng in
  { cd_corun = c; cd_a; cd_b }

let criticality_tag = function Hard -> "hard" | Soft -> "soft"

let deadline_to_string d =
  Printf.sprintf "%s@%.3fx" (criticality_tag d.d_criticality) d.d_factor

let submission_tag = function `Fifo -> "fifo" | `Round_robin -> "rr" | `Packed -> "packed"

let kspec_to_string ks =
  Printf.sprintf "%s g%d w%d%s"
    (match ks.k_body with Map -> "map" | Stencil { halo } -> Printf.sprintf "sten%d" halo)
    ks.k_grid ks.k_work
    (if ks.k_sync_after then " +sync" else "")

let to_string spec =
  let chains =
    Array.to_list
      (Array.mapi
         (fun s c ->
           Printf.sprintf "s%d:[%s]" s (String.concat "; " (List.map kspec_to_string c)))
         spec.g_chains)
  in
  Printf.sprintf "%s block=%d %s" spec.g_name spec.g_block (String.concat " " chains)

let corun_to_string c =
  Printf.sprintf "%s %s | %s | %s"
    (match c.c_partition with
    | None -> "shared"
    | Some (sa, sb) -> Printf.sprintf "partitioned:%d+%d" sa sb)
    (submission_tag c.c_submission) (to_string c.c_a) (to_string c.c_b)

let to_ocaml spec =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "(* %s *)\n" (to_string spec);
  pf "let app =\n";
  pf "  let d = Dsl.create %S in\n" spec.g_name;
  Array.iteri
    (fun s chain ->
      let len = List.length chain in
      let max_grid = List.fold_left (fun acc k -> max acc k.k_grid) 1 chain in
      pf "  (* stream %d: %d kernel(s) *)\n" s len;
      Array.iteri
        (fun i _ -> pf "  let b%d_%d = Dsl.buffer d ~elems:%d in\n" s i (max_grid * spec.g_block))
        (Array.make (len + 1) ());
      if len > 0 then pf "  Dsl.h2d d b%d_0;\n" s)
    spec.g_chains;
  let chains = Array.map Array.of_list spec.g_chains in
  let next = Array.make (Array.length chains) 0 in
  let remaining = ref (kernels spec) in
  while !remaining > 0 do
    Array.iteri
      (fun s chain ->
        if next.(s) < Array.length chain then begin
          let i = next.(s) in
          next.(s) <- next.(s) + 1;
          decr remaining;
          let ks = chain.(i) in
          let tmpl =
            match ks.k_body with
            | Map -> Printf.sprintf "Templates.map1 ~name:%S ~work:%d" (kname spec ~stream:s ~pos:i ks) ks.k_work
            | Stencil { halo } ->
              Printf.sprintf "Templates.stencil1d ~name:%S ~halo:%d ~work:%d"
                (kname spec ~stream:s ~pos:i ks) halo ks.k_work
          in
          pf "  Dsl.launch d ~stream:%d (%s) ~grid:%d ~block:%d\n" s tmpl ks.k_grid spec.g_block;
          pf "    ~args:[ (\"n\", Command.Int %d); (\"IN\", Command.Buf b%d_%d); (\"OUT\", Command.Buf b%d_%d) ];\n"
            (ks.k_grid * spec.g_block) s i s (i + 1);
          if ks.k_sync_after then pf "  Dsl.sync d;\n"
        end)
      chains
  done;
  Array.iteri
    (fun s chain ->
      if Array.length chain > 0 then pf "  Dsl.d2h d b%d_%d;\n" s (Array.length chain))
    chains;
  pf "  Dsl.app d\n";
  Buffer.contents b
