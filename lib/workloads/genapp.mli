(** Seeded random multi-stream application generator.

    Promoted out of [test/test_trace.ml] so that the randomized cross-mode
    trace harness, the differential oracle ([Bm_oracle.Diff]) and the
    shrinking fuzzer ([Bm_oracle.Fuzz] / [Bm_oracle.Shrink]) all draw from
    one generator.  Generation is split into two phases:

    - {!generate} consumes a {!Bm_engine.Rng.t} and produces a declarative
      {!spec} — a value the shrinker can edit (drop kernels or streams,
      shrink grids, simplify bodies) without re-rolling the dice;
    - {!build} deterministically lowers a [spec] to a runnable
      {!Bm_gpu.Command.app} (buffers, copies, round-robin launches).

    A [spec] therefore {e is} the reproducer: {!to_ocaml} prints it as a
    self-contained DSL program, and {!to_string} as a compact one-liner. *)

type body =
  | Map      (** {!Templates.map1}: OUT[i] = f(IN[i]) — 1-to-1 pattern *)
  | Stencil of { halo : int }
      (** {!Templates.stencil1d}: OUT[i] = f(IN[i-halo..i+halo]) — overlapped *)

type kspec = {
  k_body : body;
  k_work : int;        (** dependent-FMA padding; controls TB execution time *)
  k_grid : int;        (** thread blocks *)
  k_sync_after : bool; (** emit a [Device_synchronize] after this launch *)
}

type spec = {
  g_name : string;
  g_block : int;                (** threads per block, shared by all kernels *)
  g_chains : kspec list array;  (** index = CUDA stream id; one chain per stream *)
}

val generate :
  ?max_streams:int -> ?max_len:int -> ?max_grid:int -> ?block:int ->
  Bm_engine.Rng.t -> int -> spec
(** [generate rng idx] rolls a random app named ["rand<idx>"]: 1 to
    [max_streams] (default 2) independent kernel chains, each 1 to [max_len]
    (default 5) kernels of 1 to [max_grid] (default 16) TBs x [block]
    (default 64) threads, alternating map/stencil bodies, with an occasional
    device synchronize.  The RNG draw order is stable, so a fixed seed
    replays the same app forever. *)

val build : spec -> Bm_gpu.Command.app
(** Lower to commands: per chain, allocate [len+1] buffers, H2D the input,
    launch the kernels round-robin across chains (so residency windows of
    different streams interleave in program order), D2H each final buffer. *)

val kernels : spec -> int
(** Total number of kernel launches the spec describes. *)

val to_string : spec -> string
(** Compact one-line description, e.g.
    [rand007 block=64 s0:[map g4 w3; sten1 g16 w2 +sync] s1:[map g1 w1]]. *)

val to_ocaml : spec -> string
(** A runnable OCaml fragment (using [Dsl] and [Templates]) that rebuilds
    exactly {!build}[ spec] — printed by the fuzzer as the repro for a
    minimized counterexample. *)

(** {1 Co-run specs}

    The concurrency axis of the fuzzer: two independent specs plus the
    shape of their co-run.  The submission policy is a polymorphic
    variant (not [Bm_maestro.Multi.submission]) so this library stays
    free of a scheduler dependency; [Bm_oracle.Fuzz] converts. *)

type corun = {
  c_a : spec;
  c_b : spec;
  c_submission : [ `Fifo | `Round_robin | `Packed ];
  c_partition : (int * int) option;
      (** [None] = shared machine; [Some (sa, sb)] = disjoint SM slices *)
}

val generate_corun :
  ?num_sms:int -> ?max_streams:int -> ?max_len:int -> ?max_grid:int -> ?block:int ->
  Bm_engine.Rng.t -> int -> corun
(** [generate_corun rng idx] rolls two apps (named ["corun<idx>a"/"b"])
    with the same knobs as {!generate} except [max_grid] defaults to 48 —
    large enough to saturate a one-SM partition's 32 TB slots, so slot
    contention is actually exercised — plus a random submission policy and
    a coin-flipped spatial policy: shared, or a random split of [num_sms]
    (default 28) with at least one SM per app.  Draw order is stable. *)

val corun_to_string : corun -> string
(** One-liner: spatial, policy, then both app specs. *)

(** {1 Mixed-criticality deadline specs}

    Deadlines are expressed as {e factors} of an app's analytical
    minimum-makespan lower bound, keeping this library free of the cost
    model: callers scale the factor by
    [Bm_maestro.Deadline.min_makespan_us] to obtain absolute ticks.  A
    factor below 1.0 is provably unmeetable — exactly what admission
    control must reject. *)

type criticality = Hard | Soft

type deadline_spec = {
  d_criticality : criticality;
  d_factor : float;  (** deadline = factor x analytical lower bound *)
}

val generate_deadline : Bm_engine.Rng.t -> deadline_spec
(** Coin-flip criticality, then the factor: [Hard] draws uniformly in
    [0.5, 1.5) (half are provably unmeetable), [Soft] in [2, 10). *)

type corun_deadlines = {
  cd_corun : corun;
  cd_a : deadline_spec;
  cd_b : deadline_spec;
}

val generate_corun_deadlines :
  ?num_sms:int -> ?max_streams:int -> ?max_len:int -> ?max_grid:int -> ?block:int ->
  Bm_engine.Rng.t -> int -> corun_deadlines
(** {!generate_corun}, then one deadline spec per app.  The deadline draws
    come strictly after every co-run draw, so for any seed [cd_corun] is
    bit-identical to what {!generate_corun} alone produces. *)

val criticality_tag : criticality -> string

val deadline_to_string : deadline_spec -> string
(** e.g. ["hard@0.812x"]. *)
