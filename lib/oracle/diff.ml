module Config = Bm_gpu.Config
module Stats = Bm_gpu.Stats
module Mode = Bm_maestro.Mode
module Prep = Bm_maestro.Prep
module Sim = Bm_maestro.Sim
module Graph = Bm_maestro.Graph
module Replay = Bm_maestro.Replay
module Multi = Bm_maestro.Multi

type backend = [ `Sim | `Replay ]

let backend_name = function `Sim -> "sim" | `Replay -> "replay"

type mismatch = {
  mm_mode : Mode.t;
  mm_backend : backend;
  mm_details : string list;
}

let fdiff name a b acc =
  if a = b then acc else Printf.sprintf "%s: sim=%.9g ref=%.9g" name a b :: acc

let diff_stats (s : Stats.t) (r : Stats.t) =
  let acc = [] in
  let acc = fdiff "total_us" s.Stats.total_us r.Stats.total_us acc in
  let acc = fdiff "busy_us" s.Stats.busy_us r.Stats.busy_us acc in
  let acc = fdiff "avg_concurrency" s.Stats.avg_concurrency r.Stats.avg_concurrency acc in
  let acc = fdiff "base_mem_requests" s.Stats.base_mem_requests r.Stats.base_mem_requests acc in
  let acc = fdiff "dep_mem_requests" s.Stats.dep_mem_requests r.Stats.dep_mem_requests acc in
  let acc =
    if Array.length s.Stats.records <> Array.length r.Stats.records then
      Printf.sprintf "records: sim has %d, ref has %d" (Array.length s.Stats.records)
        (Array.length r.Stats.records)
      :: acc
    else begin
      let diffs = ref [] in
      let shown = ref 0 in
      Array.iteri
        (fun i (a : Stats.tb_record) ->
          let b = r.Stats.records.(i) in
          if a <> b && !shown < 5 then begin
            incr shown;
            diffs :=
              Printf.sprintf
                "record %d (k%d tb%d): sim dep/start/finish=%.6g/%.6g/%.6g ref=%.6g/%.6g/%.6g" i
                a.Stats.r_kernel a.Stats.r_tb a.Stats.r_dep_ready a.Stats.r_start
                a.Stats.r_finish b.Stats.r_dep_ready b.Stats.r_start b.Stats.r_finish
              :: !diffs
          end)
        s.Stats.records;
      List.rev_append !diffs acc
    end
  in
  List.rev acc

let check ?(cfg = Config.titan_x_pascal) ?(modes = List.map snd Mode.known)
    ?(backends = ([ `Sim ] : backend list)) ?cache ?window_bug app =
  (* The two reorder classes share one preparation each, like Runner; the
     replay backend additionally shares one capture across all modes (a
     graph carries both reorder classes). *)
  let prep_plain = lazy (Prep.prepare ~reorder:false ?cache cfg app) in
  let prep_reordered = lazy (Prep.prepare ~reorder:true ?cache cfg app) in
  let graph = lazy (Graph.capture ?cache cfg app) in
  let mms =
    List.concat_map
      (fun mode ->
        let prep =
          if Mode.reorders mode then Lazy.force prep_reordered else Lazy.force prep_plain
        in
        let window_override =
          match window_bug with None -> None | Some d -> Some (Mode.window mode + d)
        in
        let ref_ = Refsched.run ?window_override cfg mode prep in
        List.filter_map
          (fun backend ->
            let subject =
              match backend with
              | `Sim -> Sim.run cfg mode prep
              | `Replay -> Replay.run cfg mode (Lazy.force graph)
            in
            match diff_stats subject ref_ with
            | [] -> None
            | details -> Some { mm_mode = mode; mm_backend = backend; mm_details = details })
          backends)
      modes
  in
  if mms = [] then Ok () else Error mms

let pp_mismatch ppf mm =
  Format.fprintf ppf "@[<v 2>mode %s (%s backend):@,%a@]" (Mode.name mm.mm_mode)
    (backend_name mm.mm_backend)
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Format.pp_print_string)
    mm.mm_details

type corun_mismatch = {
  cm_mode : Mode.t;
  cm_submission : Multi.submission;
  cm_spatial : Multi.spatial;
  cm_app : int;
  cm_details : string list;
}

let check_corun ?(cfg = Config.titan_x_pascal) ?(modes = List.map snd Mode.known) ?submissions
    ?spatials ?cache ?slots_bug (apps : Bm_gpu.Command.app array) =
  let napps = Array.length apps in
  if napps < 1 then invalid_arg "Diff.check_corun: no apps";
  let submissions =
    match submissions with
    | Some s -> s
    | None -> [ Multi.Fifo; Multi.Round_robin; Multi.Packed ]
  in
  let spatials =
    match spatials with
    | Some s -> s
    | None ->
      (* Shared plus an even split of the machine (when it divides into at
         least one SM per app). *)
      let share = cfg.Config.num_sms / napps in
      if share >= 1 then [ Multi.Shared; Multi.Partitioned (Array.make napps share) ]
      else [ Multi.Shared ]
  in
  (* Preparation never reads the SM count, so one preparation per reorder
     class serves every spatial policy. *)
  let plain = lazy (Array.map (fun app -> Prep.prepare ~reorder:false ?cache cfg app) apps) in
  let reord = lazy (Array.map (fun app -> Prep.prepare ~reorder:true ?cache cfg app) apps) in
  let mms =
    List.concat_map
      (fun mode ->
        let preps = if Mode.reorders mode then Lazy.force reord else Lazy.force plain in
        List.concat_map
          (fun spatial ->
            (* Partitioned slices never contend for admission, so one
               submission policy covers them. *)
            let subs =
              match spatial with
              | Multi.Partitioned _ -> [ List.hd submissions ]
              | Multi.Shared -> submissions
            in
            List.concat_map
              (fun submission ->
                let subject = Multi.run ~submission ~spatial cfg mode preps in
                let ref_ = Refmulti.run ~submission ~spatial ?slots_bug cfg mode preps in
                List.filter_map
                  (fun a ->
                    match diff_stats subject.Multi.mr_stats.(a) ref_.(a) with
                    | [] -> None
                    | details ->
                      Some
                        {
                          cm_mode = mode;
                          cm_submission = submission;
                          cm_spatial = spatial;
                          cm_app = a;
                          cm_details = details;
                        })
                  (List.init napps Fun.id))
              subs)
          spatials)
      modes
  in
  if mms = [] then Ok () else Error mms

let pp_corun_mismatch ppf cm =
  Format.fprintf ppf "@[<v 2>mode %s (%s, %s) app %d:@,%a@]" (Mode.name cm.cm_mode)
    (Multi.submission_name cm.cm_submission)
    (Multi.spatial_name cm.cm_spatial) cm.cm_app
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Format.pp_print_string)
    cm.cm_details
