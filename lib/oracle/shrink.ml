module Genapp = Bm_workloads.Genapp

let size (spec : Genapp.spec) =
  Array.fold_left
    (fun acc chain ->
      List.fold_left
        (fun acc (k : Genapp.kspec) ->
          acc + 10 + k.Genapp.k_grid + k.Genapp.k_work
          + (if k.Genapp.k_sync_after then 1 else 0)
          + (match k.Genapp.k_body with Genapp.Map -> 0 | Genapp.Stencil _ -> 1))
        acc chain)
    0 spec.Genapp.g_chains

(* Replace chain [i] with [chain] (or drop it when [None]). *)
let with_chain (spec : Genapp.spec) i chain =
  match chain with
  | Some c ->
    let chains = Array.copy spec.Genapp.g_chains in
    chains.(i) <- c;
    { spec with Genapp.g_chains = chains }
  | None ->
    let chains =
      Array.of_list
        (List.filteri (fun j _ -> j <> i) (Array.to_list spec.Genapp.g_chains))
    in
    { spec with Genapp.g_chains = chains }

let nonempty (spec : Genapp.spec) = Genapp.kernels spec > 0

let candidates (spec : Genapp.spec) =
  let acc = ref [] in
  let add c = if nonempty c then acc := c :: !acc in
  let chains = spec.Genapp.g_chains in
  (* Drop a whole stream. *)
  if Array.length chains > 1 then
    Array.iteri (fun i _ -> add (with_chain spec i None)) chains;
  (* Drop one kernel. *)
  Array.iteri
    (fun i chain ->
      List.iteri
        (fun j _ -> add (with_chain spec i (Some (List.filteri (fun j' _ -> j' <> j) chain))))
        chain)
    chains;
  (* Per-kernel reductions: halve the grid, shrink it to 1, reduce the
     work, simplify stencil to map, drop the sync. *)
  Array.iteri
    (fun i chain ->
      List.iteri
        (fun j (k : Genapp.kspec) ->
          let replace k' =
            add (with_chain spec i (Some (List.mapi (fun j' k0 -> if j' = j then k' else k0) chain)))
          in
          if k.Genapp.k_grid > 1 then begin
            replace { k with Genapp.k_grid = k.Genapp.k_grid / 2 };
            if k.Genapp.k_grid > 2 then replace { k with Genapp.k_grid = 1 }
          end;
          if k.Genapp.k_work > 1 then replace { k with Genapp.k_work = 1 };
          (match k.Genapp.k_body with
          | Genapp.Stencil _ -> replace { k with Genapp.k_body = Genapp.Map }
          | Genapp.Map -> ());
          if k.Genapp.k_sync_after then replace { k with Genapp.k_sync_after = false })
        chain)
    chains;
  (* Most aggressive first: the adds above already go coarse-to-fine, and
     prepending reversed them, so restore that order. *)
  List.rev !acc

let minimize ?(max_steps = 1000) still_fails spec =
  let fails s = try still_fails s with _ -> false in
  let steps = ref 0 in
  let cur = ref spec in
  let progress = ref true in
  while !progress && !steps < max_steps do
    progress := false;
    match List.find_opt fails (candidates !cur) with
    | Some smaller ->
      cur := smaller;
      incr steps;
      progress := true
    | None -> ()
  done;
  (!cur, !steps)
