module Command = Bm_gpu.Command
module Config = Bm_gpu.Config
module Stats = Bm_gpu.Stats
module Bipartite = Bm_depgraph.Bipartite
module Mode = Bm_maestro.Mode
module Prep = Bm_maestro.Prep
module Hardware = Bm_maestro.Hardware

(* Thread-block lifecycle.  [Ready] means "sitting in the kernel's ready
   list" (Sim's Queued). *)
type tb = Waiting | Ready | Running | Finished

type krec = {
  info : Prep.launch_info;
  mutable enqueued : bool;   (* the host issued the launch command *)
  mutable launched : bool;   (* launch processing finished *)
  tb : tb array;
  mutable ready : int list;  (* FIFO: appended at the tail, popped at the head *)
  dep_ready : float array;
  start_t : float array;
  finish_t : float array;
  mutable drained : bool;
  mutable drained_at : float;
  mutable completed : bool;
}

type occ =
  | Launch_done of int
  | Tb_done of int * int
  | Copy_done of int
  | Cmd_done of int

let memcpy_us (cfg : Config.t) bytes =
  cfg.Config.memcpy_latency_us +. (float_of_int bytes /. (cfg.Config.memcpy_gb_per_s *. 1000.0))

let run ?(host_blocking_copies = false) ?window_override ?deadlines (cfg : Config.t) mode
    (prep : Prep.t) =
  let launches = prep.Prep.p_launches in
  let nk = Array.length launches in
  let commands = prep.Prep.p_commands in
  let nc = Array.length commands in
  let window = match window_override with Some w -> w | None -> Mode.window mode in
  let fine = Mode.fine_grain mode in
  let serial = Mode.serial_commands mode in
  let launch_us = Mode.launch_overhead cfg mode in
  let total_slots = Config.total_tb_slots cfg in

  let ks =
    Array.map
      (fun (info : Prep.launch_info) ->
        let n = info.Prep.li_tbs in
        {
          info;
          enqueued = false;
          launched = false;
          tb = Array.make n Waiting;
          ready = [];
          dep_ready = Array.make n 0.0;
          start_t = Array.make n 0.0;
          finish_t = Array.make n 0.0;
          drained = n = 0;
          drained_at = 0.0;
          completed = false;
        })
      launches
  in
  let prev_of k = match launches.(k).Prep.li_prev with Some p -> p | None -> -1 in
  let next_of = Array.make nk (-1) in
  Array.iteri (fun k (li : Prep.launch_info) ->
      match li.Prep.li_prev with Some p -> next_of.(p) <- k | None -> ())
    launches;
  let stream_of k = launches.(k).Prep.li_spec.Command.stream in
  (match deadlines with
  | Some d when Array.length d <> nk -> invalid_arg "Refsched.run: deadlines length <> launches"
  | Some _ | None -> ());
  (* Deadline key of kernel [k] under the EDF policy, re-derived naively on
     every use: the base key is the stream-prefix total TB time (or the
     caller's per-kernel override), and priority inheritance takes the
     minimum base key over [k] and its whole stream-successor chain. *)
  let edf_base k =
    match deadlines with
    | Some d -> d.(k)
    | None ->
      let rec chain k =
        if k < 0 then 0.0
        else
          chain (prev_of k)
          +. Array.fold_left ( +. ) 0.0 launches.(k).Prep.li_cost.Bm_gpu.Costmodel.tb_us
      in
      chain k
  in
  let edf_key k =
    let rec min_suffix k acc = if k < 0 then acc else min_suffix next_of.(k) (Float.min acc (edf_base k)) in
    min_suffix k infinity
  in

  (* Pending occurrences: a flat list ordered by nothing; popping scans for
     the minimum (time, insertion seq) — the heap contract, naively. *)
  let pending : (float * int * occ) list ref = ref [] in
  let next_seq = ref 0 in
  let push t o =
    pending := (t, !next_seq, o) :: !pending;
    incr next_seq
  in
  let pop () =
    match !pending with
    | [] -> None
    | first :: rest ->
      let best =
        List.fold_left
          (fun (bt, bs, _ as b) (t, s, _ as e) -> if t < bt || (t = bt && s < bs) then e else b)
          first rest
      in
      let _, bseq, _ = best in
      pending := List.filter (fun (_, s, _) -> s <> bseq) !pending;
      Some best
  in

  let now = ref 0.0 in
  let last_t = ref 0.0 in
  let area = ref 0.0 in
  let busy = ref 0.0 in
  let end_time = ref 0.0 in
  let bump t = if t > !end_time then end_time := t in

  (* Everything below is recomputed by scanning, never cached. *)
  let count_state k st = Array.fold_left (fun a s -> if s = st then a + 1 else a) 0 ks.(k).tb in
  let running_count () =
    let n = ref 0 in
    for k = 0 to nk - 1 do n := !n + count_state k Running done;
    !n
  in
  let free_slots () = total_slots - running_count () in
  let started k = count_state k Running + count_state k Finished in
  let all_finished k = Array.for_all (fun s -> s = Finished) ks.(k).tb in
  let resident stream =
    let n = ref 0 in
    for k = 0 to nk - 1 do
      if stream_of k = stream && ks.(k).enqueued && not ks.(k).completed then incr n
    done;
    !n
  in
  let advance t =
    if t > !last_t then begin
      let r = running_count () in
      area := !area +. (float_of_int r *. (t -. !last_t));
      if r > 0 then busy := !busy +. (t -. !last_t);
      last_t := t
    end
  in

  let parent_drained k =
    let p = prev_of k in
    p < 0 || ks.(p).drained || ks.(p).completed
  in
  let all_parents_finished k c =
    match ks.(k).info.Prep.li_relation with
    | Bipartite.Graph g ->
      Array.for_all (fun p -> ks.(prev_of k).tb.(p) = Finished) g.Bipartite.parents_of.(c)
    | Bipartite.Independent | Bipartite.Fully_connected -> true
  in
  let append_ready k tbid =
    let st = ks.(k) in
    if st.tb.(tbid) = Waiting then begin
      st.tb.(tbid) <- Ready;
      st.ready <- st.ready @ [ tbid ]
    end
  in
  let refresh_ready k =
    let st = ks.(k) in
    if st.launched && not st.drained then
      match st.info.Prep.li_relation with
      | Bipartite.Independent -> Array.iteri (fun tbid _ -> append_ready k tbid) st.tb
      | Bipartite.Fully_connected ->
        if parent_drained k then Array.iteri (fun tbid _ -> append_ready k tbid) st.tb
      | Bipartite.Graph _ ->
        if fine then
          Array.iteri
            (fun tbid _ -> if all_parents_finished k tbid then append_ready k tbid)
            st.tb
        else if parent_drained k then Array.iteri (fun tbid _ -> append_ready k tbid) st.tb
  in

  let copy_engine_free = ref 0.0 in
  let launch_engine_free = ref 0.0 in
  let next_cmd = ref 0 in
  let copy_done = Array.make (max nc 1) false in
  let serial_blocked = ref false in
  let serial_wait_kernel = ref (-1) in
  let pending_d2h : (int * float) list array = Array.make (max nk 1) [] in

  (* In-order per-stream completion, by repeated global scan: a kernel is
     completable once drained with its stream predecessor completed.  The
     ascending scan retires cascades in stream order, matching Sim's
     recursion along next_of. *)
  let start_copy ci dur =
    let start = max !now !copy_engine_free in
    copy_engine_free := start +. dur;
    push (start +. dur) (Copy_done ci)
  in
  let cascade () =
    let again = ref true in
    while !again do
      again := false;
      for k = 0 to nk - 1 do
        if (not ks.(k).completed) && ks.(k).drained
           && (prev_of k < 0 || ks.(prev_of k).completed)
        then begin
          ks.(k).completed <- true;
          List.iter (fun (ci, dur) -> start_copy ci dur) pending_d2h.(k);
          pending_d2h.(k) <- [];
          bump !now;
          again := true
        end
      done
    done
  in
  let kernel_completed k = k < 0 || (k < nk && ks.(k).completed) in

  let try_issue () =
    let blocked = ref false in
    while (not !blocked) && !next_cmd < nc do
      let ci = !next_cmd in
      if !serial_blocked then blocked := true
      else
        match commands.(ci) with
        | Command.Device_synchronize -> incr next_cmd
        | Command.Malloc _ ->
          push (!now +. cfg.Config.malloc_us) (Cmd_done ci);
          serial_blocked := true;
          blocked := true
        | Command.Memcpy_h2d b ->
          let dur = memcpy_us cfg b.Command.bytes in
          if serial || host_blocking_copies then begin
            push (!now +. dur) (Cmd_done ci);
            serial_blocked := true;
            blocked := true
          end
          else begin
            start_copy ci dur;
            incr next_cmd
          end
        | Command.Memcpy_d2h b ->
          let gate = match prep.Prep.p_d2h_wait.(ci) with Some k -> k | None -> -1 in
          let dur = memcpy_us cfg b.Command.bytes in
          if serial then
            if kernel_completed gate then begin
              push (!now +. dur) (Cmd_done ci);
              serial_blocked := true;
              blocked := true
            end
            else blocked := true
          else if kernel_completed gate then begin
            start_copy ci dur;
            incr next_cmd
          end
          else begin
            pending_d2h.(gate) <- pending_d2h.(gate) @ [ (ci, dur) ];
            incr next_cmd
          end
        | Command.Kernel_launch _ ->
          let seq = prep.Prep.p_kernel_of_cmd.(ci) in
          let st = ks.(seq) in
          let copies_ok = List.for_all (fun d -> copy_done.(d)) st.info.Prep.li_copy_deps in
          if serial then begin
            if copies_ok then begin
              st.enqueued <- true;
              let start = max !now !launch_engine_free in
              launch_engine_free := start +. launch_us;
              push (start +. launch_us) (Launch_done seq);
              serial_blocked := true;
              serial_wait_kernel := seq;
              blocked := true
            end
            else blocked := true
          end
          else if resident (stream_of seq) < window && copies_ok then begin
            st.enqueued <- true;
            push (!now +. launch_us) (Launch_done seq);
            incr next_cmd
          end
          else blocked := true
    done
  in

  let dispatch () =
    let continue_ = ref true in
    while !continue_ && free_slots () > 0 do
      let order =
        let active = ref [] in
        for k = nk - 1 downto 0 do
          if ks.(k).launched && not ks.(k).drained then active := k :: !active
        done;
        match Mode.policy mode with
        | Mode.Oldest_first -> !active
        | Mode.Newest_first -> List.rev !active
        | Mode.Edf ->
          (* Keys are static during a run, so sorting the active set anew
             each pick and taking the first ready kernel is exact EDF. *)
          List.sort
            (fun a b ->
              let c = Float.compare (edf_key a) (edf_key b) in
              if c <> 0 then c else Int.compare a b)
            !active
      in
      let eligible k =
        match Mode.policy mode with
        | Mode.Newest_first | Mode.Edf -> true
        | Mode.Oldest_first ->
          List.for_all
            (fun k' ->
              k' >= k || stream_of k' <> stream_of k || started k' = ks.(k').info.Prep.li_tbs)
            order
      in
      match List.find_opt (fun k -> ks.(k).ready <> [] && eligible k) order with
      | None -> continue_ := false
      | Some k ->
        let st = ks.(k) in
        let tbid = List.hd st.ready in
        st.ready <- List.tl st.ready;
        st.tb.(tbid) <- Running;
        st.start_t.(tbid) <- !now;
        push (!now +. st.info.Prep.li_cost.Bm_gpu.Costmodel.tb_us.(tbid)) (Tb_done (k, tbid))
    done
  in

  let progress () =
    try_issue ();
    dispatch ()
  in

  let on_tb_done k tbid =
    let st = ks.(k) in
    st.tb.(tbid) <- Finished;
    st.finish_t.(tbid) <- !now;
    bump !now;
    let kc = next_of.(k) in
    (* Child dependency bookkeeping, re-derived from the graph. *)
    if kc >= 0 then begin
      let child = ks.(kc) in
      match child.info.Prep.li_relation with
      | Bipartite.Graph g ->
        Array.iter
          (fun c ->
            if !now > child.dep_ready.(c) then child.dep_ready.(c) <- !now;
            if fine && child.launched && all_parents_finished kc c then append_ready kc c)
          g.Bipartite.children_of.(tbid)
      | Bipartite.Independent | Bipartite.Fully_connected -> ()
    end;
    if all_finished k then begin
      st.drained <- true;
      st.drained_at <- !now;
      if kc >= 0 then begin
        let child = ks.(kc) in
        (match child.info.Prep.li_relation with
        | Bipartite.Fully_connected ->
          Array.iteri
            (fun c t -> if t < !now then child.dep_ready.(c) <- !now)
            child.dep_ready
        | Bipartite.Independent | Bipartite.Graph _ -> ());
        refresh_ready kc
      end;
      cascade ();
      if serial && !serial_wait_kernel = k && st.completed then begin
        serial_blocked := false;
        serial_wait_kernel := -1;
        incr next_cmd
      end
    end
  in

  progress ();
  let steps = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    match pop () with
    | None -> continue_ := false
    | Some (t, _, o) ->
      incr steps;
      if !steps > 100_000_000 then failwith "Refsched.run: event budget exceeded";
      advance t;
      now := t;
      (match o with
      | Launch_done seq ->
        ks.(seq).launched <- true;
        if ks.(seq).info.Prep.li_tbs = 0 then begin
          ks.(seq).drained <- true;
          ks.(seq).drained_at <- t;
          cascade ()
        end
        else refresh_ready seq;
        bump t
      | Tb_done (k, tbid) -> on_tb_done k tbid
      | Copy_done ci ->
        copy_done.(ci) <- true;
        bump t
      | Cmd_done ci ->
        serial_blocked := false;
        (match commands.(ci) with
        | Command.Memcpy_h2d _ | Command.Memcpy_d2h _ -> copy_done.(ci) <- true
        | Command.Malloc _ | Command.Kernel_launch _ | Command.Device_synchronize -> ());
        bump t;
        incr next_cmd);
      progress ()
  done;
  if !next_cmd < nc then
    failwith
      (Printf.sprintf "Refsched.run: host stalled at command %d/%d (mode %s)" !next_cmd nc
         (Mode.name mode));
  Array.iteri
    (fun k st ->
      if not st.completed then
        failwith (Printf.sprintf "Refsched.run: kernel %d never completed" k))
    ks;

  let records = ref [] in
  for k = nk - 1 downto 0 do
    let st = ks.(k) in
    for tbid = st.info.Prep.li_tbs - 1 downto 0 do
      records :=
        {
          Stats.r_kernel = k;
          r_tb = tbid;
          r_dep_ready = st.dep_ready.(tbid);
          r_start = st.start_t.(tbid);
          r_finish = st.finish_t.(tbid);
        }
        :: !records
    done
  done;
  let base_mem = ref 0.0 in
  Array.iter
    (fun st ->
      Array.iter
        (fun m -> base_mem := !base_mem +. m)
        st.info.Prep.li_cost.Bm_gpu.Costmodel.tb_mem_requests)
    ks;
  let dep_mem = ref 0.0 in
  if Mode.reorders mode then
    Array.iter
      (fun st ->
        match st.info.Prep.li_prev with
        | None -> ()
        | Some prev ->
          if fine then
            dep_mem :=
              !dep_mem
              +. Hardware.dep_mem_requests cfg ~n_parents:launches.(prev).Prep.li_tbs
                   ~n_children:st.info.Prep.li_tbs st.info.Prep.li_relation
          else dep_mem := !dep_mem +. 2.0)
      ks;
  let total = !end_time in
  {
    Stats.total_us = total;
    busy_us = !busy;
    records = Array.of_list !records;
    avg_concurrency = (if total > 0.0 then !area /. total else 0.0);
    base_mem_requests = !base_mem;
    dep_mem_requests = !dep_mem;
  }
