(** Soundness oracle for Algorithm 1 (the launch-time dependency analysis).

    For every consecutive kernel pair of a prepared application this module
    computes the {e exact} TB-level RAW dependence by functionally executing
    both kernels through {!Bm_ptx.Interp} (via {!Bm_analysis.Dynamic}) and
    intersecting the recorded per-TB footprints pairwise
    ({!Bm_analysis.Dynamic.relate_exact}).  Kernels are executed in launch
    order against one shared memory image, so data flows through the app the
    way it would on the device.

    Two properties are checked per pair:

    - {b soundness}: the static relation must be a superset of the exact
      graph — a missing edge means the scheduler could release a consumer TB
      before its producer ran, silently corrupting every figure;
    - {b relate consistency}: the optimized, candidate-indexed
      {!Bm_depgraph.Bipartite.relate} must agree with a naive quadratic
      re-derivation from the same static footprints (including the
      [max_degree] fully-connected fallback and the exact fully-connected
      detection).

    Precision is reported as the static/exact edge-count ratio, aggregated
    per dependency pattern by [Fuzz]. *)

type pair_report = {
  pr_child_seq : int;        (** launch sequence number of the consumer *)
  pr_parent_seq : int;
  pr_pattern : Bm_depgraph.Pattern.t;  (** static classification *)
  pr_static_edges : int;
  pr_exact_edges : int;
  pr_missing : (int * int) list;
      (** exact edges absent from the static relation — soundness bugs *)
  pr_relate_diff : string option;
      (** divergence between indexed and naive static relate, if any *)
}

val pair_sound : pair_report -> bool
val pair_ok : pair_report -> bool
(** Sound {e and} relate-consistent. *)

val ratio : pair_report -> float
(** Overapproximation ratio static/exact ([1.0] when both are empty;
    [infinity] when the static relation has edges but the exact graph is
    empty). *)

val check_app :
  ?cfg:Bm_gpu.Config.t -> ?fuel:int -> Bm_gpu.Command.app -> pair_report list
(** One report per launch with a same-stream predecessor, in launch order.
    [fuel] bounds the interpreter per thread (default 1_000_000). *)

val violations : pair_report list -> pair_report list
(** The reports failing {!pair_ok}. *)

val pp_report : Format.formatter -> pair_report -> unit
