module Config = Bm_gpu.Config
module Stats = Bm_gpu.Stats
module Json = Bm_metrics.Json
module Mode = Bm_maestro.Mode
module Prep = Bm_maestro.Prep
module Sim = Bm_maestro.Sim
module Graph = Bm_maestro.Graph
module Replay = Bm_maestro.Replay
module Deadline = Bm_maestro.Deadline

type entry = {
  e_app : string;
  e_mode : Mode.t;
  e_backend : Diff.backend;
  e_bound_us : float;
  e_observed_us : float;
}

let ok e = e.e_observed_us <= e.e_bound_us

let check_app ?(cfg = Config.titan_x_pascal) ?(modes = List.map snd Mode.known)
    ?(backends = ([ `Sim; `Replay ] : Diff.backend list)) ?(optimistic_bound = false) ?cache ~name
    app =
  (* Shared preparations/capture across the sweep, like Diff.check.  Each
     backend's bound is computed from the artifact that backend executes
     (the prep, or the captured schedule's matching reorder class), so a
     capture that corrupted the cost arrays cannot satisfy its own bound
     by accident. *)
  let prep_plain = lazy (Prep.prepare ~reorder:false ?cache cfg app) in
  let prep_reordered = lazy (Prep.prepare ~reorder:true ?cache cfg app) in
  let graph = lazy (Graph.capture ?cache cfg app) in
  List.concat_map
    (fun mode ->
      let prep =
        if Mode.reorders mode then Lazy.force prep_reordered else Lazy.force prep_plain
      in
      List.map
        (fun backend ->
          let observed, bound =
            match backend with
            | `Sim -> ((Sim.run cfg mode prep).Stats.total_us, Deadline.bound_of_prep cfg mode prep)
            | `Replay ->
              let g = Lazy.force graph in
              let sched = if Mode.reorders mode then g.Graph.g_reordered else g.Graph.g_plain in
              ((Replay.run cfg mode g).Stats.total_us, Deadline.bound_of_schedule cfg mode sched)
          in
          let bound = if optimistic_bound then Deadline.min_makespan_us cfg prep else bound in
          {
            e_app = name;
            e_mode = mode;
            e_backend = backend;
            e_bound_us = bound;
            e_observed_us = observed;
          })
        backends)
    modes

let violations entries = List.filter (fun e -> not (ok e)) entries

let to_json entries =
  Json.Obj
    [
      ("schema", Json.Str "bm.rta/1");
      ( "entries",
        Json.Arr
          (List.map
             (fun e ->
               Json.Obj
                 [
                   ("app", Json.Str e.e_app);
                   ("mode", Json.Str (Mode.name e.e_mode));
                   ("backend", Json.Str (Diff.backend_name e.e_backend));
                   ("bound_us", Json.Num e.e_bound_us);
                   ("observed_us", Json.Num e.e_observed_us);
                   ("sound", Json.Bool (ok e));
                 ])
             entries) );
      ("violations", Json.Num (float_of_int (List.length (violations entries))));
    ]

let pp_entry ppf e =
  Format.fprintf ppf "%s %s (%s): observed %.3f us %s bound %.3f us" e.e_app
    (Mode.name e.e_mode)
    (Diff.backend_name e.e_backend)
    e.e_observed_us
    (if ok e then "<=" else ">")
    e.e_bound_us
