module Command = Bm_gpu.Command
module Config = Bm_gpu.Config
module Footprint = Bm_analysis.Footprint
module Dynamic = Bm_analysis.Dynamic
module Bipartite = Bm_depgraph.Bipartite
module Pattern = Bm_depgraph.Pattern
module Prep = Bm_maestro.Prep
module Interp = Bm_ptx.Interp

type pair_report = {
  pr_child_seq : int;
  pr_parent_seq : int;
  pr_pattern : Pattern.t;
  pr_static_edges : int;
  pr_exact_edges : int;
  pr_missing : (int * int) list;
  pr_relate_diff : string option;
}

let pair_sound r = r.pr_missing = []
let pair_ok r = pair_sound r && r.pr_relate_diff = None

let ratio r =
  if r.pr_exact_edges > 0 then float_of_int r.pr_static_edges /. float_of_int r.pr_exact_edges
  else if r.pr_static_edges = 0 then 1.0
  else infinity

(* Does the static relation contain edge (p, c)? *)
let static_has rel (p, c) =
  match rel with
  | Bipartite.Independent -> false
  | Bipartite.Fully_connected -> true
  | Bipartite.Graph g ->
    c < Array.length g.Bipartite.parents_of && Array.exists (( = ) p) g.Bipartite.parents_of.(c)

(* Naive re-derivation of the static relation from per-TB footprints,
   including the degree cap and the exact fully-connected detection — the
   differential reference for the candidate-indexed Bipartite.relate. *)
let naive_relate ~max_degree parent child =
  match (parent, child) with
  | Footprint.Conservative _, _ | _, Footprint.Conservative _ -> Bipartite.Fully_connected
  | Footprint.Per_tb pfps, Footprint.Per_tb cfps ->
    let n_parents = Array.length pfps and n_children = Array.length cfps in
    let edges = Dynamic.relate_exact ~writes:pfps ~reads:cfps in
    if edges = [] then Bipartite.Independent
    else begin
      let indeg = Array.make n_children 0 in
      List.iter (fun (_, c) -> indeg.(c) <- indeg.(c) + 1) edges;
      if Array.exists (fun d -> d > max_degree) indeg then Bipartite.Fully_connected
      else if
        n_parents > 1 && n_children > 1
        && Array.for_all (fun d -> d = n_parents) indeg
      then Bipartite.Fully_connected
      else Bipartite.Graph (Bipartite.of_edges ~n_parents ~n_children edges)
    end

let relation_equal a b =
  match (a, b) with
  | Bipartite.Independent, Bipartite.Independent -> true
  | Bipartite.Fully_connected, Bipartite.Fully_connected -> true
  | Bipartite.Graph x, Bipartite.Graph y -> Bipartite.equal x y
  | _ -> false

let check_app ?(cfg = Config.titan_x_pascal) ?fuel app =
  let prep = Prep.prepare ~reorder:true cfg app in
  let mem = Interp.memory () in
  (* Execute launches in order against the shared image, collecting the
     exact footprints of each as a side effect of the execution. *)
  let dyn_fp =
    Array.map
      (fun (li : Prep.launch_info) ->
        let launch = Command.footprint_launch li.Prep.li_spec in
        match Dynamic.footprints ?fuel li.Prep.li_spec.Command.kernel launch mem with
        | Footprint.Per_tb fps -> fps
        | Footprint.Conservative _ -> assert false (* Dynamic always returns Per_tb *))
      prep.Prep.p_launches
  in
  Array.to_list prep.Prep.p_launches
  |> List.filter_map (fun (li : Prep.launch_info) ->
         match li.Prep.li_prev with
         | None -> None
         | Some p ->
           let exact =
             Dynamic.relate_exact ~writes:dyn_fp.(p) ~reads:dyn_fp.(li.Prep.li_seq)
           in
           let missing = List.filter (fun e -> not (static_has li.Prep.li_relation e)) exact in
           let n_parents = prep.Prep.p_launches.(p).Prep.li_tbs in
           let relate_diff =
             let naive =
               naive_relate ~max_degree:cfg.Config.max_parent_degree
                 prep.Prep.p_launches.(p).Prep.li_fp li.Prep.li_fp
             in
             if relation_equal naive li.Prep.li_relation then None
             else
               Some
                 (Format.asprintf "indexed relate = %a, naive relate = %a"
                    Bipartite.pp_relation li.Prep.li_relation Bipartite.pp_relation naive)
           in
           Some
             {
               pr_child_seq = li.Prep.li_seq;
               pr_parent_seq = p;
               pr_pattern = li.Prep.li_pattern;
               pr_static_edges =
                 Bipartite.edge_count li.Prep.li_relation ~n_parents ~n_children:li.Prep.li_tbs;
               pr_exact_edges = List.length exact;
               pr_missing = missing;
               pr_relate_diff = relate_diff;
             })

let violations reports = List.filter (fun r -> not (pair_ok r)) reports

let pp_report ppf r =
  Format.fprintf ppf "pair %d->%d [%s]: static %d edges, exact %d (ratio %.2f)%s%s"
    r.pr_parent_seq r.pr_child_seq (Pattern.name r.pr_pattern) r.pr_static_edges r.pr_exact_edges
    (ratio r)
    (if r.pr_missing = [] then ""
     else
       Printf.sprintf ", UNSOUND: %d missing edge(s) e.g. (%d,%d)" (List.length r.pr_missing)
         (fst (List.hd r.pr_missing))
         (snd (List.hd r.pr_missing)))
    (match r.pr_relate_diff with None -> "" | Some d -> ", RELATE MISMATCH: " ^ d)
