(** Differential checker: {!Bm_maestro.Sim.run} vs {!Refsched.run}.

    The two simulators share their inputs ({!Bm_maestro.Prep.t} and the
    machine config) and must agree {e cycle-exactly}: identical totals,
    identical concurrency integrals, identical memory-request models and an
    identical per-TB record array (dep-ready / start / finish times compared
    with exact float equality — both engines derive every timestamp from the
    same cost-model inputs through the same arithmetic, so any difference is
    a semantic divergence, not rounding). *)

type backend = [ `Sim | `Replay ]
(** Which execution engine produced the checked result: the command-queue
    simulator ({!Bm_maestro.Sim.run} on a fresh preparation) or the
    capture/replay path ({!Bm_maestro.Graph.capture} followed by
    {!Bm_maestro.Replay.run}).  Both are differenced against the same
    reference scheduler, so adding [`Replay] simultaneously proves the
    replay engine against {!Refsched} and — by transitivity through the
    shared reference — against the simulator. *)

val backend_name : backend -> string

type mismatch = {
  mm_mode : Bm_maestro.Mode.t;
  mm_backend : backend;
  mm_details : string list;  (** one line per diverging field / record *)
}

val diff_stats : Bm_gpu.Stats.t -> Bm_gpu.Stats.t -> string list
(** [diff_stats sim ref_] is empty iff the two results agree cycle-exactly;
    otherwise one human-readable line per difference (record diffs are
    truncated after a few entries). *)

val check :
  ?cfg:Bm_gpu.Config.t ->
  ?modes:Bm_maestro.Mode.t list ->
  ?backends:backend list ->
  ?cache:Bm_maestro.Cache.t ->
  ?window_bug:int ->
  Bm_gpu.Command.app ->
  (unit, mismatch list) result
(** Run every mode (default: all of {!Bm_maestro.Mode.known}) through both
    engines and collect disagreements.  [backends] (default [[`Sim]])
    selects the subject engine(s) per mode; all backends share one
    preparation per reorder class and one capture.  [window_bug] adds its
    value to the pre-launch window bound of the {e reference} engine only —
    an intentionally injected bug for validating that the harness detects
    and shrinks scheduler divergence (see [Fuzz]).  [cache] memoizes the
    launch-time analysis across apps ({!Bm_maestro.Cache}); preparation is
    cycle-identical with and without it, which this checker is itself the
    gate for. *)

val pp_mismatch : Format.formatter -> mismatch -> unit

(** {1 Co-run differencing}

    The multi-app analogue: {!Bm_maestro.Multi.run} vs {!Refmulti.run}
    across submission and spatial policies. *)

type corun_mismatch = {
  cm_mode : Bm_maestro.Mode.t;
  cm_submission : Bm_maestro.Multi.submission;
  cm_spatial : Bm_maestro.Multi.spatial;
  cm_app : int;  (** index of the diverging app *)
  cm_details : string list;
}

val check_corun :
  ?cfg:Bm_gpu.Config.t ->
  ?modes:Bm_maestro.Mode.t list ->
  ?submissions:Bm_maestro.Multi.submission list ->
  ?spatials:Bm_maestro.Multi.spatial list ->
  ?cache:Bm_maestro.Cache.t ->
  ?slots_bug:int ->
  Bm_gpu.Command.app array ->
  (unit, corun_mismatch list) result
(** Co-run the apps under every (mode, spatial, submission) combination
    through both engines and collect per-app disagreements.  Defaults:
    all modes, all three submission policies, and [Shared] plus an even
    [Partitioned] split of the machine.  Under [Partitioned] only the
    first submission policy is exercised (disjoint slices never contend
    for admission, so the policy is inert).  [slots_bug] widens the
    {e reference} engine's TB-slot pools — the injected-bug hook for
    validating that the co-run harness detects and shrinks divergence
    (see [Fuzz.run_corun]). *)

val pp_corun_mismatch : Format.formatter -> corun_mismatch -> unit
