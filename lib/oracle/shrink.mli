(** Delta-debugging shrinker for {!Bm_workloads.Genapp} specs.

    Given a failing spec and a predicate ("does the property still fail?"),
    greedily applies the smallest-first reduction steps — drop a whole
    stream, drop a kernel, halve a grid, reduce work to 1, simplify a
    stencil to a map, drop a device synchronize — restarting after every
    accepted step, until no single step keeps the failure alive.  The
    result is a locally minimal reproducer, printed by the fuzzer via
    {!Bm_workloads.Genapp.to_ocaml}. *)

val candidates : Bm_workloads.Genapp.spec -> Bm_workloads.Genapp.spec list
(** All single-step reductions of a spec, most aggressive first.  Every
    candidate is strictly smaller under {!size}; none is empty. *)

val size : Bm_workloads.Genapp.spec -> int
(** Well-founded shrink measure (kernels, grid sum, work sum, syncs,
    stencil count combined); every candidate strictly decreases it, so
    shrinking terminates. *)

val minimize :
  ?max_steps:int ->
  (Bm_workloads.Genapp.spec -> bool) ->
  Bm_workloads.Genapp.spec ->
  Bm_workloads.Genapp.spec * int
(** [minimize still_fails spec] returns the shrunk spec and the number of
    accepted steps.  [still_fails spec] must be true on entry; predicates
    that raise are treated as "does not fail" (the candidate is rejected —
    a shrink step must preserve the observed failure, not trade it for a
    crash).  [max_steps] (default 1000) bounds the walk. *)
