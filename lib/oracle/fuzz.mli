(** The fuzzer: generate random apps, differentially validate the scheduler
    and Algorithm 1, shrink any counterexample to a minimal reproducer.

    Per generated app ({!Bm_workloads.Genapp.generate}):

    + every requested mode runs through both [Sim.run] and the reference
      scheduler, asserting cycle-exact agreement ({!Diff.check});
    + the static dependency analysis is checked against the
      interpreter-derived exact graphs ({!Soundness.check_app}), including
      the indexed-vs-naive relate consistency test.

    On failure, the spec is minimized with {!Shrink.minimize} under "the
    same class of failure still occurs" and the shrunk spec is rendered as
    a runnable DSL program.  Exposed on the command line as [bmctl fuzz]. *)

type kind =
  | Scheduler_mismatch  (** Sim (or Multi) vs reference scheduler divergence *)
  | Unsound_analysis    (** static graph missing an exact RAW edge *)
  | Relate_mismatch     (** indexed vs naive Bipartite.relate divergence *)
  | Isolation_breach
      (** a partitioned co-run's per-app stats differ from its solo run on
          a partition-sized machine (co-run fuzzing only) *)
  | Crash of string     (** either engine raised *)

type failure = {
  f_index : int;                      (** which generated app *)
  f_kind : kind;
  f_detail : string;
  f_spec : Bm_workloads.Genapp.spec;  (** the original failing spec *)
  f_shrunk : Bm_workloads.Genapp.spec option;  (** minimized, if shrinking ran *)
  f_shrink_steps : int;
}

type report = {
  r_seed : int;
  r_count : int;                      (** apps generated *)
  r_modes : Bm_maestro.Mode.t list;
  r_backends : Diff.backend list;     (** subject engines differenced *)
  r_pairs_checked : int;              (** kernel pairs soundness-checked *)
  r_precision : (Bm_depgraph.Pattern.t * int * float) list;
      (** per static pattern: pair count, mean static/exact edge ratio
          (pairs with an infinite ratio are excluded from the mean) *)
  r_failures : failure list;
}

val kind_name : kind -> string

val run :
  ?cfg:Bm_gpu.Config.t ->
  ?modes:Bm_maestro.Mode.t list ->
  ?backends:Diff.backend list ->
  ?shrink:bool ->
  ?soundness:bool ->
  ?window_bug:int ->
  ?log:(string -> unit) ->
  ?jobs:int ->
  ?chunk:int ->
  ?cache_dir:string ->
  seed:int ->
  count:int ->
  unit ->
  report
(** [backends] (default [[`Sim]]) selects the engines {!Diff.check}
    differences per mode; include [`Replay] to exercise graph capture and
    event-trigger replay on every generated app.  [shrink] (default true)
    minimizes failures; [soundness] (default true)
    runs the Algorithm 1 oracle; [window_bug] injects a pre-launch-window
    mutation into the reference scheduler (see {!Diff.check}) so the
    harness can prove it catches scheduler bugs.  [log] receives progress
    lines (default: drop them).

    [jobs] (default {!Bm_parallel.default_jobs}) examines and shrinks the
    generated apps on a domain pool.  Spec generation always consumes the
    seeded RNG sequentially in index order, so the report — failure
    indices, kinds, shrunk reproducers, precision statistics — is
    identical for every domain count; with [jobs = 1] the run is exactly
    the historical sequential path.

    [chunk] (default 256) bounds how many generated specs are alive at
    once: specs are generated and examined in bounded sequential chunks,
    and only failing specs are retained, so memory stays flat for huge
    [count].  Generation order, verdicts, shrunk reproducers and log lines
    are identical for every chunk size.

    Each worker domain keeps its own launch-time analysis cache
    ({!Bm_maestro.Cache}, single-domain per DESIGN §8), so structurally
    repeated kernels across generated apps are analyzed once per domain;
    cached preparation is cycle-identical, so verdicts do not depend on
    task-to-domain assignment.

    [cache_dir] attaches the persistent {!Bm_maestro.Store} tier: each
    worker domain opens its own handle on the shared directory.  Disk
    state only changes preparation wall-clock, never verdicts, so the
    report stays identical for every [jobs] and for any prior store
    contents — including a corrupted store, which reads as misses. *)

val ok : report -> bool

val pp_failure : Format.formatter -> failure -> unit
val pp_report : Format.formatter -> report -> unit

(** {1 Co-run fuzzing}

    The concurrency axis: random two-app co-runs
    ({!Bm_workloads.Genapp.generate_corun}) differenced through
    {!Diff.check_corun} ([Multi] vs the naive [Refmulti]) under the
    spec's own submission/spatial policy; partitioned co-runs are
    additionally checked app-by-app against solo [Sim] runs on
    partition-sized machines (the isolation property).  Failures shrink
    to a minimal interfering {e pair} by alternately minimizing each app
    with the other held fixed until neither shrinks further. *)

type corun_failure = {
  cf_index : int;
  cf_kind : kind;
  cf_detail : string;
  cf_corun : Bm_workloads.Genapp.corun;
  cf_shrunk : Bm_workloads.Genapp.corun option;
  cf_shrink_steps : int;
}

type corun_report = {
  cr_seed : int;
  cr_count : int;  (** co-runs generated *)
  cr_modes : Bm_maestro.Mode.t list;
  cr_failures : corun_failure list;
}

val run_corun :
  ?cfg:Bm_gpu.Config.t ->
  ?modes:Bm_maestro.Mode.t list ->
  ?shrink:bool ->
  ?slots_bug:int ->
  ?log:(string -> unit) ->
  ?jobs:int ->
  ?chunk:int ->
  ?cache_dir:string ->
  seed:int ->
  count:int ->
  unit ->
  corun_report
(** Same determinism contract as {!run}: co-run generation consumes the
    seeded RNG sequentially in index order, so the report is identical
    for every [jobs] and [chunk] (default 64).  [slots_bug] widens the
    reference engine's TB-slot pools (see {!Diff.check_corun}) so the
    harness can prove it catches concurrency bugs. *)

val corun_ok : corun_report -> bool

val pp_corun_failure : Format.formatter -> corun_failure -> unit
val pp_corun_report : Format.formatter -> corun_report -> unit
