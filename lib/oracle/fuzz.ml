module Rng = Bm_engine.Rng
module Config = Bm_gpu.Config
module Mode = Bm_maestro.Mode
module Pattern = Bm_depgraph.Pattern
module Genapp = Bm_workloads.Genapp

type kind =
  | Scheduler_mismatch
  | Unsound_analysis
  | Relate_mismatch
  | Isolation_breach
  | Crash of string

type failure = {
  f_index : int;
  f_kind : kind;
  f_detail : string;
  f_spec : Genapp.spec;
  f_shrunk : Genapp.spec option;
  f_shrink_steps : int;
}

type report = {
  r_seed : int;
  r_count : int;
  r_modes : Mode.t list;
  r_backends : Diff.backend list;
  r_pairs_checked : int;
  r_precision : (Pattern.t * int * float) list;
  r_failures : failure list;
}

let kind_name = function
  | Scheduler_mismatch -> "scheduler mismatch"
  | Unsound_analysis -> "unsound dependency analysis"
  | Relate_mismatch -> "relate divergence"
  | Isolation_breach -> "partition isolation breach"
  | Crash msg -> "crash: " ^ msg

(* Classify one spec.  [Clean] carries the soundness reports of the single
   oracle pass so the caller can fold precision statistics without
   re-running the analysis; it is empty when [soundness] is off. *)
type outcome =
  | Clean of Soundness.pair_report list
  | Bad of kind * string

(* One launch-time analysis cache per worker domain (DESIGN §8/§9: caches
   are single-domain sinks, never shared across domains).  Generated apps
   reuse kernel structures heavily, and cached preparation is
   cycle-identical — this very harness is the gate for that — so verdicts
   do not depend on which domain (and therefore which cache) examines an
   app.

   With [?cache_dir], each domain additionally opens its own Store handle
   on the shared directory (per-domain stores on one dir: writes are
   atomic, values are pure functions of their keys, so the report stays
   identical under any --jobs — disk state only changes wall-clock).  The
   wanted directory is published through an atomic so worker domains —
   whose DLS initializes lazily — pick it up on first use and rebuild
   their cache if a later run changes it. *)
let wanted_cache_dir : string option Atomic.t = Atomic.make None

let domain_state : (string option * Bm_maestro.Cache.t) ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref (None, Bm_maestro.Cache.create ()))

let domain_cache () =
  let st = Domain.DLS.get domain_state in
  let want = Atomic.get wanted_cache_dir in
  let have, cache = !st in
  if have = want then cache
  else begin
    let store =
      match want with
      | None -> None
      | Some dir -> (
        match Bm_maestro.Store.open_dir dir with Ok s -> Some s | Error _ -> None)
    in
    let cache = Bm_maestro.Cache.create ?store () in
    st := (want, cache);
    cache
  end

let with_cache_dir cache_dir f =
  let prev = Atomic.get wanted_cache_dir in
  Atomic.set wanted_cache_dir cache_dir;
  Fun.protect ~finally:(fun () -> Atomic.set wanted_cache_dir prev) f

let examine_outcome ~cfg ~modes ~backends ~soundness ~window_bug spec =
  let app = Genapp.build spec in
  let cache = domain_cache () in
  match Diff.check ~cfg ~modes ~backends ~cache ?window_bug app with
  | Error (mm :: _) -> Bad (Scheduler_mismatch, Format.asprintf "%a" Diff.pp_mismatch mm)
  | Error [] -> Clean [] (* unreachable: Error implies at least one mismatch *)
  | exception exn ->
    let msg = Printexc.to_string exn in
    Bad (Crash msg, msg)
  | Ok () ->
    if not soundness then Clean []
    else begin
      match Soundness.check_app ~cfg app with
      | exception exn ->
        let msg = Printexc.to_string exn in
        Bad (Crash msg, msg)
      | reports -> (
        match Soundness.violations reports with
        | [] -> Clean reports
        | v :: _ ->
          let kind = if Soundness.pair_sound v then Relate_mismatch else Unsound_analysis in
          Bad (kind, Format.asprintf "%a" Soundness.pp_report v))
    end

(* None = clean; used as the shrinking predicate (same kind must persist). *)
let examine ~cfg ~modes ~backends ~soundness ~window_bug spec =
  match examine_outcome ~cfg ~modes ~backends ~soundness ~window_bug spec with
  | Clean _ -> None
  | Bad (kind, detail) -> Some (kind, detail)

let same_kind a b =
  match (a, b) with
  | Scheduler_mismatch, Scheduler_mismatch
  | Unsound_analysis, Unsound_analysis
  | Relate_mismatch, Relate_mismatch
  | Isolation_breach, Isolation_breach
  | Crash _, Crash _ -> true
  | _ -> false

let run ?(cfg = Config.titan_x_pascal) ?(modes = List.map snd Mode.known)
    ?(backends = ([ `Sim ] : Diff.backend list)) ?(shrink = true) ?(soundness = true) ?window_bug
    ?(log = fun _ -> ()) ?jobs ?(chunk = 256) ?cache_dir ~seed ~count () =
  if chunk < 1 then invalid_arg "Fuzz.run: chunk must be >= 1";
  with_cache_dir cache_dir @@ fun () ->
  (* Spec generation consumes the seeded RNG strictly in index order — the
     one sequential phase — so the generated stream is identical to a fully
     sequential run regardless of how many domains examine it, and identical
     for every chunk size: chunking only bounds how many specs are alive at
     once (memory stays flat for huge --count), never the generation order,
     the verdicts or the log lines.  Only failing specs are retained. *)
  let rng = Rng.create seed in
  let pairs = ref 0 in
  (* pattern -> (count, ratio sum, finite-ratio count) *)
  let precision : (Pattern.t, int ref * float ref * int ref) Hashtbl.t = Hashtbl.create 8 in
  let bad = ref [] in
  let next = ref 0 in
  while !next < count do
    let base = !next in
    let n = min chunk (count - base) in
    let specs = Array.init n (fun i -> Genapp.generate rng (base + i)) in
    let outcomes =
      Bm_parallel.map_ordered ?domains:jobs
        (examine_outcome ~cfg ~modes ~backends ~soundness ~window_bug)
        specs
    in
    Array.iteri
      (fun i outcome ->
        let idx = base + i in
        (match outcome with
        | Clean reports ->
          (* Clean: accumulate the precision statistics for the summary. *)
          List.iter
            (fun r ->
              incr pairs;
              let cnt, sum, fin =
                match Hashtbl.find_opt precision r.Soundness.pr_pattern with
                | Some t -> t
                | None ->
                  let t = (ref 0, ref 0.0, ref 0) in
                  Hashtbl.add precision r.Soundness.pr_pattern t;
                  t
              in
              incr cnt;
              let rat = Soundness.ratio r in
              if rat < infinity then begin
                sum := !sum +. rat;
                incr fin
              end)
            reports
        | Bad (kind, detail) ->
          log
            (Printf.sprintf "app %d (%s): %s" idx (Genapp.to_string specs.(i)) (kind_name kind));
          bad := (idx, kind, detail, specs.(i)) :: !bad);
        if (idx + 1) mod 50 = 0 then
          log (Printf.sprintf "%d/%d apps checked, %d failure(s)" (idx + 1) count
                 (List.length !bad)))
      outcomes;
    next := base + n
  done;
  (* Each failure shrinks independently (same per-task determinism: the
     shrinker re-examines candidate specs, never the RNG), so failures
     minimize in parallel too. *)
  let failures =
    Bm_parallel.map_list ?domains:jobs
      (fun (idx, kind, detail, spec) ->
        let shrunk, steps =
          if not shrink then (None, 0)
          else begin
            let still_fails s =
              match examine ~cfg ~modes ~backends ~soundness ~window_bug s with
              | Some (k, _) -> same_kind k kind
              | None -> false
            in
            let s, steps = Shrink.minimize still_fails spec in
            (Some s, steps)
          end
        in
        { f_index = idx; f_kind = kind; f_detail = detail; f_spec = spec;
          f_shrunk = shrunk; f_shrink_steps = steps })
      (List.rev !bad)
  in
  let precision_list =
    Hashtbl.fold
      (fun p (cnt, sum, fin) acc ->
        (p, !cnt, if !fin > 0 then !sum /. float_of_int !fin else nan) :: acc)
      precision []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare (Pattern.table1_id a) (Pattern.table1_id b))
  in
  {
    r_seed = seed;
    r_count = count;
    r_modes = modes;
    r_backends = backends;
    r_pairs_checked = !pairs;
    r_precision = precision_list;
    r_failures = failures;
  }

let ok r = r.r_failures = []

(* ------------------------------------------------------------------ *)
(* Co-run fuzzing: the concurrency axis.                              *)
(* ------------------------------------------------------------------ *)

module Multi = Bm_maestro.Multi
module Prep = Bm_maestro.Prep
module Sim = Bm_maestro.Sim

type corun_failure = {
  cf_index : int;
  cf_kind : kind;
  cf_detail : string;
  cf_corun : Genapp.corun;
  cf_shrunk : Genapp.corun option;
  cf_shrink_steps : int;
}

type corun_report = {
  cr_seed : int;
  cr_count : int;
  cr_modes : Mode.t list;
  cr_failures : corun_failure list;
}

let submission_of_tag = function
  | `Fifo -> Multi.Fifo
  | `Round_robin -> Multi.Round_robin
  | `Packed -> Multi.Packed

(* Two checks per co-run: (1) Multi vs the naive Refmulti under the spec's
   own submission/spatial policy; (2) for partitioned co-runs, each app's
   stats against its solo Sim run on a machine the size of its slice — the
   isolation property, checked against an engine that knows nothing about
   co-running at all. *)
let examine_corun ~cfg ~modes ~slots_bug (c : Genapp.corun) =
  let apps = [| Genapp.build c.c_a; Genapp.build c.c_b |] in
  let cache = domain_cache () in
  let submission = submission_of_tag c.c_submission in
  let spatial =
    match c.c_partition with
    | None -> Multi.Shared
    | Some (sa, sb) -> Multi.Partitioned [| sa; sb |]
  in
  match
    Diff.check_corun ~cfg ~modes ~submissions:[ submission ] ~spatials:[ spatial ] ~cache
      ?slots_bug apps
  with
  | Error (cm :: _) ->
    Some (Scheduler_mismatch, Format.asprintf "%a" Diff.pp_corun_mismatch cm)
  | Error [] -> None (* unreachable: Error implies at least one mismatch *)
  | exception exn ->
    let msg = Printexc.to_string exn in
    Some (Crash msg, msg)
  | Ok () -> (
    match c.c_partition with
    | None -> None
    | Some (sa, sb) -> (
      (* Preparation never reads the SM count, so the full-machine preps
         serve both the co-run and the solo slice runs. *)
      let slices = [| Config.with_sms cfg sa; Config.with_sms cfg sb |] in
      let breach =
        List.find_map
          (fun mode ->
            let preps =
              Array.map (fun app -> Prep.prepare ~reorder:(Mode.reorders mode) ~cache cfg app) apps
            in
            let co = Multi.run ~submission ~spatial cfg mode preps in
            List.find_map
              (fun a ->
                let solo = Sim.run slices.(a) mode preps.(a) in
                match Diff.diff_stats co.Multi.mr_stats.(a) solo with
                | [] -> None
                | details ->
                  Some
                    (Printf.sprintf "mode %s app %d co-run vs solo on %d SM(s): %s"
                       (Mode.name mode) a
                       (if a = 0 then sa else sb)
                       (String.concat "; " details)))
              [ 0; 1 ])
          modes
      in
      match breach with
      | exception exn ->
        let msg = Printexc.to_string exn in
        Some (Crash msg, msg)
      | Some detail -> Some (Isolation_breach, detail)
      | None -> None))

(* Alternate minimizing the two specs until neither shrinks further; size
   strictly decreases on every accepted step, so the loop terminates. *)
let shrink_corun still_fails (c : Genapp.corun) =
  let cur = ref c and steps = ref 0 and progress = ref true in
  while !progress do
    progress := false;
    let sa, na = Shrink.minimize (fun s -> still_fails { !cur with Genapp.c_a = s }) !cur.Genapp.c_a in
    if na > 0 then begin
      cur := { !cur with Genapp.c_a = sa };
      steps := !steps + na;
      progress := true
    end;
    let sb, nb = Shrink.minimize (fun s -> still_fails { !cur with Genapp.c_b = s }) !cur.Genapp.c_b in
    if nb > 0 then begin
      cur := { !cur with Genapp.c_b = sb };
      steps := !steps + nb;
      progress := true
    end
  done;
  (!cur, !steps)

let run_corun ?(cfg = Config.titan_x_pascal) ?(modes = List.map snd Mode.known) ?(shrink = true)
    ?slots_bug ?(log = fun _ -> ()) ?jobs ?(chunk = 64) ?cache_dir ~seed ~count () =
  if chunk < 1 then invalid_arg "Fuzz.run_corun: chunk must be >= 1";
  with_cache_dir cache_dir @@ fun () ->
  (* Same sequential-generation / parallel-examination contract as [run]:
     the report is identical for every [jobs] and [chunk]. *)
  let rng = Rng.create seed in
  let bad = ref [] in
  let next = ref 0 in
  while !next < count do
    let base = !next in
    let n = min chunk (count - base) in
    let coruns =
      Array.init n (fun i -> Genapp.generate_corun ~num_sms:cfg.Config.num_sms rng (base + i))
    in
    let outcomes =
      Bm_parallel.map_ordered ?domains:jobs (examine_corun ~cfg ~modes ~slots_bug) coruns
    in
    Array.iteri
      (fun i outcome ->
        let idx = base + i in
        (match outcome with
        | None -> ()
        | Some (kind, detail) ->
          log
            (Printf.sprintf "corun %d (%s): %s" idx
               (Genapp.corun_to_string coruns.(i))
               (kind_name kind));
          bad := (idx, kind, detail, coruns.(i)) :: !bad);
        if (idx + 1) mod 25 = 0 then
          log
            (Printf.sprintf "%d/%d co-runs checked, %d failure(s)" (idx + 1) count
               (List.length !bad)))
      outcomes;
    next := base + n
  done;
  let failures =
    Bm_parallel.map_list ?domains:jobs
      (fun (idx, kind, detail, c) ->
        let shrunk, steps =
          if not shrink then (None, 0)
          else begin
            let still_fails c' =
              match examine_corun ~cfg ~modes ~slots_bug c' with
              | Some (k, _) -> same_kind k kind
              | None -> false
            in
            let c', steps = shrink_corun still_fails c in
            (Some c', steps)
          end
        in
        {
          cf_index = idx;
          cf_kind = kind;
          cf_detail = detail;
          cf_corun = c;
          cf_shrunk = shrunk;
          cf_shrink_steps = steps;
        })
      (List.rev !bad)
  in
  { cr_seed = seed; cr_count = count; cr_modes = modes; cr_failures = failures }

let corun_ok r = r.cr_failures = []

let pp_corun_failure ppf f =
  Format.fprintf ppf "@[<v>corun %d: %s@,%s@,spec: %s@]" f.cf_index (kind_name f.cf_kind)
    f.cf_detail
    (Genapp.corun_to_string f.cf_corun);
  match f.cf_shrunk with
  | None -> ()
  | Some c ->
    Format.fprintf ppf
      "@,@[<v>shrunk (%d step(s), %d + %d kernel(s)): %s@,repro app a:@,%s@,repro app b:@,%s@]"
      f.cf_shrink_steps
      (Genapp.kernels c.Genapp.c_a)
      (Genapp.kernels c.Genapp.c_b)
      (Genapp.corun_to_string c)
      (Genapp.to_ocaml c.Genapp.c_a)
      (Genapp.to_ocaml c.Genapp.c_b)

let pp_corun_report ppf r =
  Format.fprintf ppf "@[<v>corun fuzz: seed=%d count=%d modes=%s@," r.cr_seed r.cr_count
    (String.concat "," (List.map Mode.name r.cr_modes));
  if r.cr_failures = [] then
    Format.fprintf ppf "no co-run mismatches, no isolation breaches@]"
  else begin
    Format.fprintf ppf "%d FAILURE(S):@," (List.length r.cr_failures);
    Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_corun_failure ppf r.cr_failures;
    Format.fprintf ppf "@]"
  end

let pp_failure ppf f =
  Format.fprintf ppf "@[<v>app %d: %s@,%s@,spec: %s@]" f.f_index (kind_name f.f_kind) f.f_detail
    (Genapp.to_string f.f_spec);
  match f.f_shrunk with
  | None -> ()
  | Some s ->
    Format.fprintf ppf "@,@[<v>shrunk (%d step(s), %d kernel(s)): %s@,repro:@,%s@]"
      f.f_shrink_steps (Genapp.kernels s) (Genapp.to_string s) (Genapp.to_ocaml s)

let pp_report ppf r =
  Format.fprintf ppf "@[<v>fuzz: seed=%d count=%d modes=%s backends=%s@," r.r_seed r.r_count
    (String.concat "," (List.map Mode.name r.r_modes))
    (String.concat "," (List.map Diff.backend_name r.r_backends));
  Format.fprintf ppf "soundness pairs checked: %d@," r.r_pairs_checked;
  List.iter
    (fun (p, cnt, mean) ->
      Format.fprintf ppf "  pattern %-15s %5d pair(s)  mean static/exact ratio %s@,"
        (Pattern.name p) cnt
        (if Float.is_nan mean then "n/a" else Printf.sprintf "%.2f" mean))
    r.r_precision;
  if r.r_failures = [] then Format.fprintf ppf "no mismatches, no soundness violations@]"
  else begin
    Format.fprintf ppf "%d FAILURE(S):@," (List.length r.r_failures);
    Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_failure ppf r.r_failures;
    Format.fprintf ppf "@]"
  end
