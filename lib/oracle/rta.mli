(** Response-time-analysis soundness oracle.

    {!Bm_maestro.Deadline} computes a worst-case completion bound per app:
    the sum of every activity's duration (launch overheads, mallocs,
    copies, TB work).  The analytical claim is that {e every} simulated
    makespan — any mode, either backend — is at most this bound, because
    the simulated clock only ever advances to the completion of some
    executing activity and each activity runs exactly once.

    This module is the empirical half of that argument, in the
    {!Soundness} spirit: {!check_app} sweeps one app across modes ×
    backends, recording the observed makespan against the bound computed
    from the very artifact the backend executed (the preparation under
    [`Sim], the captured schedule under [`Replay]).  Any entry with
    [observed > bound] is an analysis bug with a concrete reproducer.

    [optimistic_bound] substitutes the analytical {e lower} bound
    ({!Bm_maestro.Deadline.min_makespan_us}) for the worst-case bound — a
    deliberately broken analysis the CI self-test uses to prove a genuine
    violation is detected (mirroring the fuzzer's [--inject-slots-bug]). *)

type entry = {
  e_app : string;
  e_mode : Bm_maestro.Mode.t;
  e_backend : Diff.backend;
  e_bound_us : float;
  e_observed_us : float;
}

val ok : entry -> bool
(** [observed <= bound]. *)

val check_app :
  ?cfg:Bm_gpu.Config.t ->
  ?modes:Bm_maestro.Mode.t list ->
  ?backends:Diff.backend list ->
  ?optimistic_bound:bool ->
  ?cache:Bm_maestro.Cache.t ->
  name:string ->
  Bm_gpu.Command.app ->
  entry list
(** Sweep one app.  Defaults: every {!Bm_maestro.Mode.known} mode, both
    backends.  Preparations and the capture are shared across the sweep
    exactly like {!Diff.check}, and [cache] (possibly store-backed) feeds
    both. *)

val violations : entry list -> entry list

val to_json : entry list -> Bm_metrics.Json.t
(** Schema ["bm.rta/1"]: one record per (app, mode, backend) with the
    bound, the observation and the verdict, plus a violation count. *)

val pp_entry : Format.formatter -> entry -> unit
