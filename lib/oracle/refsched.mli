(** Reference scheduler: the slow-but-obviously-correct twin of
    {!Bm_maestro.Sim}.

    [run] implements exactly the contracts of [Sim.run] — per-stream
    pre-launch windows, serial baseline command semantics, producer-/
    consumer-priority thread-block scheduling, fine-grain parent-counter
    gating, slot capacity, the copy engine, in-order per-stream kernel
    completion — but with none of the optimized machinery:

    - no binary event heap: pending occurrences live in a flat list scanned
      linearly for the minimum (time, insertion) pair;
    - no incremental counters: running-TB counts, free slots, per-stream
      residency, kernel drain and producer-priority eligibility are all
      recomputed by scanning every kernel and thread block each time;
    - no pending-parent counters: fine-grain readiness re-checks {e all} of
      a TB's parents' finished flags against the bipartite graph.

    The result is O(n²)-ish in events and TBs, which is fine: the oracle
    runs on fuzzer-sized apps.  [Bm_oracle.Diff] asserts cycle-exact
    agreement (identical {!Bm_gpu.Stats.t}, including per-TB records) with
    [Sim.run] for every mode, so any divergence — in either engine — is a
    bug with a concrete reproducer.

    [window_override] replaces the mode's pre-launch window bound, used by
    the fuzzer's self-test to inject a known scheduler bug and prove the
    differential harness catches and shrinks it.

    [deadlines] overrides the per-kernel deadline keys of the
    {!Bm_maestro.Mode.Deadline_edf} dispatch policy, mirroring [Sim.run] —
    the keys (and priority inheritance over the stream-successor chain)
    are re-derived naively on every scheduling decision rather than
    precomputed.  Ignored by every other mode.

    @raise Failure like [Sim.run] on a stalled host or a kernel that never
    completes. *)

val run :
  ?host_blocking_copies:bool ->
  ?window_override:int ->
  ?deadlines:float array ->
  Bm_gpu.Config.t ->
  Bm_maestro.Mode.t ->
  Bm_maestro.Prep.t ->
  Bm_gpu.Stats.t
