(** Naive reference for {!Bm_maestro.Multi}: the concurrent analogue of
    {!Refsched}.

    Same philosophy — favor obviousness over speed.  Every derived
    quantity (running TBs per slot pool, per-stream residency, admission
    ranks under a submission policy, dispatch eligibility) is recomputed
    from scratch by scanning, never cached; pending occurrences live in
    an unordered list popped by minimum [(time, insertion seq)].  The
    admission rank of a kernel under [Packed] is recomputed by replaying
    the greedy merge from the beginning on every query.  Agreement with
    the incremental, int-packed-heap [Multi.run] across every mode,
    submission and spatial policy is therefore strong evidence both
    engines implement the same concurrency semantics.

    [slots_bug] (default 0) widens every TB-slot pool by that many slots
    — an intentionally injected contention bug used to validate that the
    co-run differential harness actually detects and shrinks divergence
    (the multi-app analogue of [Diff]'s [window_bug]). *)

val run :
  ?submission:Bm_maestro.Multi.submission ->
  ?spatial:Bm_maestro.Multi.spatial ->
  ?slots_bug:int ->
  Bm_gpu.Config.t ->
  Bm_maestro.Mode.t ->
  Bm_maestro.Prep.t array ->
  Bm_gpu.Stats.t array
(** Per-app statistics in app-local numbering, field-for-field comparable
    with [Multi.run]'s [mr_stats] via {!Diff.diff_stats}. *)
