module Command = Bm_gpu.Command
module Config = Bm_gpu.Config
module Stats = Bm_gpu.Stats
module Bipartite = Bm_depgraph.Bipartite
module Mode = Bm_maestro.Mode
module Prep = Bm_maestro.Prep
module Multi = Bm_maestro.Multi
module Hardware = Bm_maestro.Hardware

type tb = Waiting | Ready | Running | Finished

type krec = {
  info : Prep.launch_info;
  mutable enqueued : bool;
  mutable launched : bool;
  tb : tb array;
  mutable ready : int list;
  dep_ready : float array;
  start_t : float array;
  finish_t : float array;
  mutable drained : bool;
  mutable drained_at : float;
  mutable completed : bool;
}

(* Occurrences carry their app: the pop rule stays minimum
   (time, insertion seq), so two apps' simultaneous events retire in
   insertion order — the same tie-break the packed event heap gives
   Multi. *)
type occ =
  | Launch_done of int
  | Tb_done of int * int
  | Copy_done of int
  | Cmd_done of int

let memcpy_us (cfg : Config.t) bytes =
  cfg.Config.memcpy_latency_us +. (float_of_int bytes /. (cfg.Config.memcpy_gb_per_s *. 1000.0))

let run ?(submission = Multi.Fifo) ?(spatial = Multi.Shared) ?(slots_bug = 0) (cfg : Config.t)
    mode (preps : Prep.t array) =
  let napps = Array.length preps in
  if napps < 1 then invalid_arg "Refmulti.run: no apps";
  let parts =
    match spatial with
    | Multi.Shared -> None
    | Multi.Partitioned parts ->
      if Array.length parts <> napps then
        invalid_arg "Refmulti.run: partition list must have one slice per app";
      Some parts
  in
  let acfg = Array.init napps (fun a ->
      match parts with None -> cfg | Some p -> Config.with_sms cfg p.(a))
  in
  let window = Mode.window mode in
  let fine = Mode.fine_grain mode in
  let serial = Mode.serial_commands mode in
  let launch_us = Mode.launch_overhead cfg mode in

  let launches = Array.map (fun (p : Prep.t) -> p.Prep.p_launches) preps in
  let nk = Array.map Array.length launches in
  let commands = Array.map (fun (p : Prep.t) -> p.Prep.p_commands) preps in
  let nc = Array.map Array.length commands in
  let ks =
    Array.map
      (Array.map (fun (info : Prep.launch_info) ->
           let n = info.Prep.li_tbs in
           {
             info;
             enqueued = false;
             launched = false;
             tb = Array.make n Waiting;
             ready = [];
             dep_ready = Array.make n 0.0;
             start_t = Array.make n 0.0;
             finish_t = Array.make n 0.0;
             drained = n = 0;
             drained_at = 0.0;
             completed = false;
           }))
      launches
  in
  let prev_of a k = match launches.(a).(k).Prep.li_prev with Some p -> p | None -> -1 in
  let next_of =
    Array.init napps (fun a ->
        let nx = Array.make nk.(a) (-1) in
        Array.iteri
          (fun k (li : Prep.launch_info) ->
            match li.Prep.li_prev with Some p -> nx.(p) <- k | None -> ())
          launches.(a);
        nx)
  in
  let stream_of a k = launches.(a).(k).Prep.li_spec.Command.stream in

  (* Resource pools: one for everything under Shared, one per app under
     Partitioned.  [slots_bug] widens every pool. *)
  let pool_of a = match parts with None -> 0 | Some _ -> a in
  let npools = match parts with None -> 1 | Some _ -> napps in
  let slot_budget p =
    (match parts with
    | None -> Config.total_tb_slots cfg
    | Some _ -> Config.total_tb_slots acfg.(p))
    + slots_bug
  in
  let copy_engine_free = Array.make npools 0.0 in
  let launch_engine_free = Array.make npools 0.0 in

  (* Pending occurrences: flat list, popped by scanning. *)
  let pending : (float * int * int * occ) list ref = ref [] in
  let next_seq = ref 0 in
  let push a t o =
    pending := (t, !next_seq, a, o) :: !pending;
    incr next_seq
  in
  let pop () =
    match !pending with
    | [] -> None
    | first :: rest ->
      let best =
        List.fold_left
          (fun ((bt, bs, _, _) as b) ((t, s, _, _) as e) ->
            if t < bt || (t = bt && s < bs) then e else b)
          first rest
      in
      let _, bseq, _, _ = best in
      pending := List.filter (fun (_, s, _, _) -> s <> bseq) !pending;
      Some best
  in

  let now = ref 0.0 in
  (* Per-app clocks, advanced only around that app's own activity — the
     same discipline Multi uses to keep per-app floats on the solo-run op
     sequence. *)
  let last_t = Array.make napps 0.0 in
  let area = Array.make napps 0.0 in
  let busy = Array.make napps 0.0 in
  let end_time = Array.make napps 0.0 in
  let bump a t = if t > end_time.(a) then end_time.(a) <- t in

  (* Recomputed by scanning, never cached. *)
  let count_state a k st =
    Array.fold_left (fun acc s -> if s = st then acc + 1 else acc) 0 ks.(a).(k).tb
  in
  let app_running a =
    let n = ref 0 in
    for k = 0 to nk.(a) - 1 do
      n := !n + count_state a k Running
    done;
    !n
  in
  let pool_running p =
    let n = ref 0 in
    for a = 0 to napps - 1 do
      if pool_of a = p then n := !n + app_running a
    done;
    !n
  in
  let free_slots p = slot_budget p - pool_running p in
  let started a k = count_state a k Running + count_state a k Finished in
  let all_finished a k = Array.for_all (fun s -> s = Finished) ks.(a).(k).tb in
  let resident a stream =
    let n = ref 0 in
    for k = 0 to nk.(a) - 1 do
      if stream_of a k = stream && ks.(a).(k).enqueued && not ks.(a).(k).completed then incr n
    done;
    !n
  in
  let advance a t =
    if t > last_t.(a) then begin
      let r = app_running a in
      area.(a) <- area.(a) +. (float_of_int r *. (t -. last_t.(a)));
      if r > 0 then busy.(a) <- busy.(a) +. (t -. last_t.(a));
      last_t.(a) <- t
    end
  in

  (* Admission ranks, recomputed from scratch on every query.  A kernel
     may enqueue only when its rank equals the count of kernels already
     enqueued machine-wide; partitioned slices (and a single app) skip
     the gate. *)
  let gated = parts = None && napps > 1 in
  let enq_count = ref 0 in
  let rank a k =
    match submission with
    | Multi.Fifo ->
      let r = ref 0 in
      for b = 0 to a - 1 do
        r := !r + nk.(b)
      done;
      !r + k
    | Multi.Round_robin ->
      let r = ref 0 in
      for b = 0 to napps - 1 do
        for j = 0 to nk.(b) - 1 do
          if j < k || (j = k && b < a) then incr r
        done
      done;
      !r
    | Multi.Packed ->
      (* Replay the greedy merge until (a, k) is chosen. *)
      let idx = Array.make napps 0 in
      let r = ref 0 in
      let found = ref (-1) in
      while !found < 0 do
        let best = ref (-1) in
        let best_tbs = ref max_int in
        for b = 0 to napps - 1 do
          if idx.(b) < nk.(b) && launches.(b).(idx.(b)).Prep.li_tbs < !best_tbs then begin
            best := b;
            best_tbs := launches.(b).(idx.(b)).Prep.li_tbs
          end
        done;
        if !best = a && idx.(a) = k then found := !r
        else begin
          idx.(!best) <- idx.(!best) + 1;
          incr r
        end
      done;
      !found
  in
  let admission_ok a k = (not gated) || rank a k = !enq_count in
  let note_enqueued () = if gated then incr enq_count in

  let parent_drained a k =
    let p = prev_of a k in
    p < 0 || ks.(a).(p).drained || ks.(a).(p).completed
  in
  let all_parents_finished a k c =
    match ks.(a).(k).info.Prep.li_relation with
    | Bipartite.Graph g ->
      Array.for_all
        (fun p -> ks.(a).(prev_of a k).tb.(p) = Finished)
        g.Bipartite.parents_of.(c)
    | Bipartite.Independent | Bipartite.Fully_connected -> true
  in
  let append_ready a k tbid =
    let st = ks.(a).(k) in
    if st.tb.(tbid) = Waiting then begin
      st.tb.(tbid) <- Ready;
      st.ready <- st.ready @ [ tbid ]
    end
  in
  let refresh_ready a k =
    let st = ks.(a).(k) in
    if st.launched && not st.drained then
      match st.info.Prep.li_relation with
      | Bipartite.Independent -> Array.iteri (fun tbid _ -> append_ready a k tbid) st.tb
      | Bipartite.Fully_connected ->
        if parent_drained a k then Array.iteri (fun tbid _ -> append_ready a k tbid) st.tb
      | Bipartite.Graph _ ->
        if fine then
          Array.iteri
            (fun tbid _ -> if all_parents_finished a k tbid then append_ready a k tbid)
            st.tb
        else if parent_drained a k then
          Array.iteri (fun tbid _ -> append_ready a k tbid) st.tb
  in

  let next_cmd = Array.make napps 0 in
  let copy_done = Array.init napps (fun a -> Array.make (max nc.(a) 1) false) in
  let serial_blocked = Array.make napps false in
  let serial_wait_kernel = Array.make napps (-1) in
  let pending_d2h = Array.init napps (fun a -> Array.make (max nk.(a) 1) []) in

  let start_copy a ci dur =
    let p = pool_of a in
    let start = max !now copy_engine_free.(p) in
    copy_engine_free.(p) <- start +. dur;
    push a (start +. dur) (Copy_done ci)
  in
  let cascade () =
    let again = ref true in
    while !again do
      again := false;
      for a = 0 to napps - 1 do
        for k = 0 to nk.(a) - 1 do
          if
            (not ks.(a).(k).completed)
            && ks.(a).(k).drained
            && (prev_of a k < 0 || ks.(a).(prev_of a k).completed)
          then begin
            ks.(a).(k).completed <- true;
            List.iter (fun (ci, dur) -> start_copy a ci dur) pending_d2h.(a).(k);
            pending_d2h.(a).(k) <- [];
            bump a !now;
            again := true
          end
        done
      done
    done
  in
  let kernel_completed a k = k < 0 || (k < nk.(a) && ks.(a).(k).completed) in

  let try_issue a =
    let progressed = ref false in
    let blocked = ref false in
    while (not !blocked) && next_cmd.(a) < nc.(a) do
      let ci = next_cmd.(a) in
      if serial_blocked.(a) then blocked := true
      else
        match commands.(a).(ci) with
        | Command.Device_synchronize ->
          next_cmd.(a) <- ci + 1;
          progressed := true
        | Command.Malloc _ ->
          push a (!now +. cfg.Config.malloc_us) (Cmd_done ci);
          serial_blocked.(a) <- true;
          blocked := true;
          progressed := true
        | Command.Memcpy_h2d b ->
          let dur = memcpy_us cfg b.Command.bytes in
          if serial then begin
            push a (!now +. dur) (Cmd_done ci);
            serial_blocked.(a) <- true;
            blocked := true
          end
          else begin
            start_copy a ci dur;
            next_cmd.(a) <- ci + 1
          end;
          progressed := true
        | Command.Memcpy_d2h b ->
          let gate = match preps.(a).Prep.p_d2h_wait.(ci) with Some k -> k | None -> -1 in
          let dur = memcpy_us cfg b.Command.bytes in
          if serial then
            if kernel_completed a gate then begin
              push a (!now +. dur) (Cmd_done ci);
              serial_blocked.(a) <- true;
              blocked := true;
              progressed := true
            end
            else blocked := true
          else if kernel_completed a gate then begin
            start_copy a ci dur;
            next_cmd.(a) <- ci + 1;
            progressed := true
          end
          else begin
            pending_d2h.(a).(gate) <- pending_d2h.(a).(gate) @ [ (ci, dur) ];
            next_cmd.(a) <- ci + 1;
            progressed := true
          end
        | Command.Kernel_launch _ ->
          let seq = preps.(a).Prep.p_kernel_of_cmd.(ci) in
          let st = ks.(a).(seq) in
          let copies_ok =
            List.for_all (fun d -> copy_done.(a).(d)) st.info.Prep.li_copy_deps
          in
          if serial then begin
            if copies_ok && admission_ok a seq then begin
              st.enqueued <- true;
              note_enqueued ();
              let p = pool_of a in
              let start = max !now launch_engine_free.(p) in
              launch_engine_free.(p) <- start +. launch_us;
              push a (start +. launch_us) (Launch_done seq);
              serial_blocked.(a) <- true;
              serial_wait_kernel.(a) <- seq;
              blocked := true;
              progressed := true
            end
            else blocked := true
          end
          else if resident a (stream_of a seq) < window && copies_ok && admission_ok a seq
          then begin
            st.enqueued <- true;
            note_enqueued ();
            push a (!now +. launch_us) (Launch_done seq);
            next_cmd.(a) <- ci + 1;
            progressed := true
          end
          else blocked := true
    done;
    !progressed
  in

  (* Dispatch one TB at a time: the first eligible ready TB in app-major
     order, the mode's policy order within an app — exactly the sequence
     Multi's per-app ring drain produces.  The per-app clock advances
     before a TB starts so foreign-time dispatches (an app getting slots
     freed by another app's finish) integrate correctly. *)
  let dispatch () =
    let continue_ = ref true in
    while !continue_ do
      let pick = ref None in
      let a = ref 0 in
      while !pick = None && !a < napps do
        if free_slots (pool_of !a) > 0 then begin
          let order =
            let active = ref [] in
            for k = nk.(!a) - 1 downto 0 do
              if ks.(!a).(k).launched && not ks.(!a).(k).drained then active := k :: !active
            done;
            match Mode.policy mode with
            | Mode.Oldest_first -> !active
            | Mode.Newest_first -> List.rev !active
            | Mode.Edf ->
              (* Within-app EDF, naively: the base key is the stream-prefix
                 total TB time, inheritance takes the minimum over the
                 stream-successor chain, and the static keys let repeated
                 sort-and-first-pick reproduce Multi's ring drain. *)
              let rec base k =
                if k < 0 then 0.0
                else
                  base (prev_of !a k)
                  +. Array.fold_left ( +. ) 0.0
                       ks.(!a).(k).info.Prep.li_cost.Bm_gpu.Costmodel.tb_us
              in
              let rec min_suffix k acc =
                if k < 0 then acc else min_suffix next_of.(!a).(k) (Float.min acc (base k))
              in
              let key k = min_suffix k infinity in
              List.sort
                (fun x y ->
                  let c = Float.compare (key x) (key y) in
                  if c <> 0 then c else Int.compare x y)
                !active
          in
          let eligible k =
            match Mode.policy mode with
            | Mode.Newest_first | Mode.Edf -> true
            | Mode.Oldest_first ->
              List.for_all
                (fun k' ->
                  k' >= k
                  || stream_of !a k' <> stream_of !a k
                  || started !a k' = ks.(!a).(k').info.Prep.li_tbs)
                order
          in
          match List.find_opt (fun k -> ks.(!a).(k).ready <> [] && eligible k) order with
          | Some k -> pick := Some (!a, k)
          | None -> incr a
        end
        else incr a
      done;
      match !pick with
      | None -> continue_ := false
      | Some (a, k) ->
        let st = ks.(a).(k) in
        let tbid = List.hd st.ready in
        st.ready <- List.tl st.ready;
        advance a !now;
        st.tb.(tbid) <- Running;
        st.start_t.(tbid) <- !now;
        push a (!now +. st.info.Prep.li_cost.Bm_gpu.Costmodel.tb_us.(tbid)) (Tb_done (k, tbid))
    done
  in

  let progress () =
    let again = ref true in
    while !again do
      again := false;
      for a = 0 to napps - 1 do
        if try_issue a then again := true
      done
    done;
    dispatch ()
  in

  let on_tb_done a k tbid =
    let st = ks.(a).(k) in
    st.tb.(tbid) <- Finished;
    st.finish_t.(tbid) <- !now;
    bump a !now;
    let kc = next_of.(a).(k) in
    if kc >= 0 then begin
      let child = ks.(a).(kc) in
      match child.info.Prep.li_relation with
      | Bipartite.Graph g ->
        Array.iter
          (fun c ->
            if !now > child.dep_ready.(c) then child.dep_ready.(c) <- !now;
            if fine && child.launched && all_parents_finished a kc c then append_ready a kc c)
          g.Bipartite.children_of.(tbid)
      | Bipartite.Independent | Bipartite.Fully_connected -> ()
    end;
    if all_finished a k then begin
      st.drained <- true;
      st.drained_at <- !now;
      if kc >= 0 then begin
        let child = ks.(a).(kc) in
        (match child.info.Prep.li_relation with
        | Bipartite.Fully_connected ->
          Array.iteri (fun c t -> if t < !now then child.dep_ready.(c) <- !now) child.dep_ready
        | Bipartite.Independent | Bipartite.Graph _ -> ());
        refresh_ready a kc
      end;
      cascade ();
      if serial && serial_wait_kernel.(a) = k && st.completed then begin
        serial_blocked.(a) <- false;
        serial_wait_kernel.(a) <- -1;
        next_cmd.(a) <- next_cmd.(a) + 1
      end
    end
  in

  progress ();
  let steps = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    match pop () with
    | None -> continue_ := false
    | Some (t, _, a, o) ->
      incr steps;
      if !steps > 100_000_000 then failwith "Refmulti.run: event budget exceeded";
      advance a t;
      now := t;
      (match o with
      | Launch_done seq ->
        ks.(a).(seq).launched <- true;
        if ks.(a).(seq).info.Prep.li_tbs = 0 then begin
          ks.(a).(seq).drained <- true;
          ks.(a).(seq).drained_at <- t;
          cascade ()
        end
        else refresh_ready a seq;
        bump a t
      | Tb_done (k, tbid) -> on_tb_done a k tbid
      | Copy_done ci ->
        copy_done.(a).(ci) <- true;
        bump a t
      | Cmd_done ci ->
        serial_blocked.(a) <- false;
        (match commands.(a).(ci) with
        | Command.Memcpy_h2d _ | Command.Memcpy_d2h _ -> copy_done.(a).(ci) <- true
        | Command.Malloc _ | Command.Kernel_launch _ | Command.Device_synchronize -> ());
        bump a t;
        next_cmd.(a) <- next_cmd.(a) + 1);
      progress ()
  done;
  for a = 0 to napps - 1 do
    if next_cmd.(a) < nc.(a) then
      failwith
        (Printf.sprintf "Refmulti.run: app %d host stalled at command %d/%d (mode %s)" a
           next_cmd.(a) nc.(a) (Mode.name mode));
    Array.iteri
      (fun k st ->
        if not st.completed then
          failwith (Printf.sprintf "Refmulti.run: app %d kernel %d never completed" a k))
      ks.(a)
  done;

  Array.init napps (fun a ->
      let records = ref [] in
      for k = nk.(a) - 1 downto 0 do
        let st = ks.(a).(k) in
        for tbid = st.info.Prep.li_tbs - 1 downto 0 do
          records :=
            {
              Stats.r_kernel = k;
              r_tb = tbid;
              r_dep_ready = st.dep_ready.(tbid);
              r_start = st.start_t.(tbid);
              r_finish = st.finish_t.(tbid);
            }
            :: !records
        done
      done;
      let base_mem = ref 0.0 in
      Array.iter
        (fun st ->
          Array.iter
            (fun m -> base_mem := !base_mem +. m)
            st.info.Prep.li_cost.Bm_gpu.Costmodel.tb_mem_requests)
        ks.(a);
      let dep_mem = ref 0.0 in
      if Mode.reorders mode then
        Array.iter
          (fun st ->
            match st.info.Prep.li_prev with
            | None -> ()
            | Some prev ->
              if fine then
                dep_mem :=
                  !dep_mem
                  +. Hardware.dep_mem_requests acfg.(a)
                       ~n_parents:launches.(a).(prev).Prep.li_tbs
                       ~n_children:st.info.Prep.li_tbs st.info.Prep.li_relation
              else dep_mem := !dep_mem +. 2.0)
          ks.(a);
      let total = end_time.(a) in
      {
        Stats.total_us = total;
        busy_us = busy.(a);
        records = Array.of_list !records;
        avg_concurrency = (if total > 0.0 then area.(a) /. total else 0.0);
        base_mem_requests = !base_mem;
        dep_mem_requests = !dep_mem;
      })
